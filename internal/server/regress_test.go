package server

import (
	"context"
	"errors"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"csce/internal/plan"
)

// TestPlanCacheEvictionOrder pins the full LRU recency semantics, not
// just "something gets evicted": gets refresh recency, overwriting puts
// refresh recency, and evictions strike in exact least-recently-used
// order, asserted key by key.
func TestPlanCacheEvictionOrder(t *testing.T) {
	c := newPlanCache(4)
	plans := map[string]*plan.Plan{}
	for _, k := range []string{"a", "b", "c", "d"} {
		plans[k] = &plan.Plan{}
		c.put(k, plans[k])
	}
	// Recency, most→least recent: d c b a. Touch a (get) and b (overwrite
	// put): b a d c.
	if pl, ok := c.get("a"); !ok || pl != plans["a"] {
		t.Fatal("a must be cached")
	}
	c.put("b", plans["b"])

	// Now push fresh keys one at a time; evictions must strike in exact
	// least-recently-used order: c, d, a, b.
	for i, victim := range []string{"c", "d", "a", "b"} {
		newKey := "n" + strconv.Itoa(i)
		c.put(newKey, &plan.Plan{})
		if _, ok := c.get(victim); ok {
			t.Fatalf("after inserting %s, %s should have been evicted", newKey, victim)
		}
		if c.len() != 4 {
			t.Fatalf("len = %d, want 4", c.len())
		}
	}
	// The four fresh keys are what remains.
	for i := 0; i < 4; i++ {
		if _, ok := c.get("n" + strconv.Itoa(i)); !ok {
			t.Fatalf("n%d should be resident", i)
		}
	}
}

// TestPlanCacheOverwriteKeepsSingleEntry guards against an overwrite
// creating a duplicate list element whose stale twin would corrupt
// eviction order.
func TestPlanCacheOverwriteKeepsSingleEntry(t *testing.T) {
	c := newPlanCache(2)
	p1, p2 := &plan.Plan{}, &plan.Plan{}
	c.put("k", p1)
	c.put("k", p2)
	if c.len() != 1 {
		t.Fatalf("len = %d after overwrite, want 1", c.len())
	}
	if pl, ok := c.get("k"); !ok || pl != p2 {
		t.Fatal("overwrite must replace the cached plan")
	}
}

// TestPlanCacheContentionAccounting hammers the cache from many
// goroutines (meaningful under -race) and then checks the invariants
// that must survive arbitrary interleaving: capacity is never exceeded
// and every get moved exactly one of the hit/miss counters.
func TestPlanCacheContentionAccounting(t *testing.T) {
	const (
		workers = 8
		iters   = 500
		cap     = 8
	)
	c := newPlanCache(cap)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := "k" + strconv.Itoa((w+i)%(2*cap))
				if _, ok := c.get(key); !ok {
					c.put(key, &plan.Plan{})
				}
				if i%64 == 0 {
					_ = c.len()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.len() > cap {
		t.Fatalf("cache exceeded capacity: %d > %d", c.len(), cap)
	}
	gets := c.hits.Load() + c.misses.Load()
	if gets != workers*iters {
		t.Fatalf("hits+misses = %d, want %d (every get moves exactly one counter)", gets, workers*iters)
	}
}

// TestAdmissionQueueTimeoutUnderContention drives the valve through its
// three outcomes at once — holding, queued-then-timed-out, and rejected —
// and then proves no slot or queue accounting leaked.
func TestAdmissionQueueTimeoutUnderContention(t *testing.T) {
	a := newAdmission(1, 3)
	if err := a.admit(context.Background()); err != nil {
		t.Fatal(err) // the holder pins the only slot
	}

	// Three waiters fill the queue; their deadline will fire before the
	// holder releases.
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	waiters := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() { waiters <- a.admit(ctx) }()
	}
	for a.queued() != 3 {
		runtime.Gosched()
	}

	// With the queue at depth, further callers bounce immediately even
	// though their own context is healthy.
	for i := 0; i < 5; i++ {
		if err := a.admit(context.Background()); !errors.Is(err, ErrQueueFull) {
			t.Fatalf("overflow caller %d: want ErrQueueFull, got %v", i, err)
		}
	}
	if got := a.rejectedTotal(); got != 5 {
		t.Fatalf("rejectedTotal = %d, want 5", got)
	}

	// Every queued waiter must report the deadline, not hang or admit.
	for i := 0; i < 3; i++ {
		if err := <-waiters; !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("waiter %d: want DeadlineExceeded, got %v", i, err)
		}
	}
	for a.queued() != 0 {
		runtime.Gosched()
	}
	if got := a.inFlight(); got != 1 {
		t.Fatalf("inFlight = %d, want 1 (only the holder)", got)
	}

	// Timed-out waiters must not have consumed the slot: after the holder
	// releases, a fresh caller admits instantly.
	a.release()
	if err := a.admit(context.Background()); err != nil {
		t.Fatalf("slot leaked after timeouts: %v", err)
	}
	a.release()
	if a.inFlight() != 0 || a.queued() != 0 {
		t.Fatalf("leaked accounting: inFlight=%d queued=%d", a.inFlight(), a.queued())
	}
}

// TestAdmissionChurnUnderContention mixes successful admits, timeouts,
// and rejections across many goroutines and checks conservation: every
// caller gets exactly one outcome and the valve ends empty. Primarily a
// -race workload for the CAS/channel interplay in admit/release.
func TestAdmissionChurnUnderContention(t *testing.T) {
	a := newAdmission(2, 2)
	const callers = 64
	results := make(chan error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
			defer cancel()
			err := a.admit(ctx)
			if err == nil {
				time.Sleep(time.Millisecond)
				a.release()
			}
			results <- err
		}()
	}
	wg.Wait()
	close(results)
	counts := map[string]int{}
	for err := range results {
		switch {
		case err == nil:
			counts["ok"]++
		case errors.Is(err, ErrQueueFull):
			counts["rejected"]++
		case errors.Is(err, context.DeadlineExceeded):
			counts["timeout"]++
		default:
			t.Fatalf("unexpected admit outcome: %v", err)
		}
	}
	if total := counts["ok"] + counts["rejected"] + counts["timeout"]; total != callers {
		t.Fatalf("outcomes %v sum to %d, want %d", counts, total, callers)
	}
	if counts["ok"] == 0 {
		t.Fatal("no caller ever admitted; valve wedged")
	}
	if a.inFlight() != 0 || a.queued() != 0 {
		t.Fatalf("valve not empty after churn: inFlight=%d queued=%d", a.inFlight(), a.queued())
	}
	if got := a.rejectedTotal(); got != uint64(counts["rejected"]) {
		t.Fatalf("rejectedTotal = %d, but %d callers saw ErrQueueFull", got, counts["rejected"])
	}
}

package server

import (
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"csce/internal/graph"
)

// impossiblePattern asks for an edge between label-1 vertices; every test
// graph here is all label 0, so the nbr-label filter proves it empty.
const impossiblePattern = "t undirected\nv 0 1\nv 1 1\ne 0 1\n"

// cycleGraph builds an unlabeled undirected n-cycle.
func cycleGraph(n int) *graph.Graph {
	b := graph.NewBuilder(false)
	b.AddVertices(n, 0)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.VertexID(i), graph.VertexID((i+1)%n), 0)
	}
	return b.MustBuild()
}

// prefilterMetric digs one per-filter counter out of the /metrics JSON doc.
func prefilterMetric(t *testing.T, doc map[string]any, family, filter string) float64 {
	t.Helper()
	fam, ok := doc[family].(map[string]any)
	if !ok {
		t.Fatalf("/metrics missing %q: %v", family, doc[family])
	}
	v, ok := fam[filter].(float64)
	if !ok {
		t.Fatalf("/metrics %s missing filter %q: %v", family, filter, fam)
	}
	return v
}

// histCount reads latency.<family>.<member>.count from the /metrics doc.
func histCount(t *testing.T, doc map[string]any, family, member string) float64 {
	t.Helper()
	lat := doc["latency"].(map[string]any)
	fam, ok := lat[family].(map[string]any)
	if !ok {
		t.Fatalf("latency doc missing family %q", family)
	}
	h, ok := fam[member].(map[string]any)
	if !ok {
		t.Fatalf("latency.%s missing member %q: %v", family, member, fam)
	}
	return h["count"].(float64)
}

// TestPrefilterRejectEndToEnd drives the single-store reject path over
// HTTP: a label-impossible query returns a normal 200 summary naming the
// rejecting filter (never a silent empty), the per-filter counters move,
// and an admitted-but-empty query is tallied as a false admit.
func TestPrefilterRejectEndToEnd(t *testing.T) {
	base, _ := startServer(t, Config{}, map[string]*graph.Graph{
		"k6": graph.Clique(6, 0),
		"c4": cycleGraph(4),
	})

	resp := postMatch(t, base, "k6", impossiblePattern, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rejected query status %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Error("rejected query missing X-Trace-Id header")
	}
	embeddings, sum := readStream(t, resp)
	if len(embeddings) != 0 {
		t.Fatalf("rejected query streamed %d embeddings", len(embeddings))
	}
	if sum == nil {
		t.Fatal("rejected query returned no summary line")
	}
	if sum["rejected_by"] != "nbr-label" {
		t.Fatalf("rejected_by = %v, want nbr-label (summary %v)", sum["rejected_by"], sum)
	}
	if sum["count"].(float64) != 0 || sum["embeddings"].(float64) != 0 {
		t.Fatalf("reject summary counts non-zero: %v", sum)
	}
	reason, _ := sum["reason"].(string)
	if !strings.Contains(reason, "no edge between labels") {
		t.Fatalf("reject reason %q not machine-readable", reason)
	}

	doc := getMetrics(t, base)
	if got := prefilterMetric(t, doc, "prefilter_checks", "nbr-label"); got < 1 {
		t.Errorf("prefilter_checks[nbr-label] = %v, want >= 1", got)
	}
	if got := prefilterMetric(t, doc, "prefilter_rejects", "nbr-label"); got != 1 {
		t.Errorf("prefilter_rejects[nbr-label] = %v, want 1", got)
	}

	// A triangle admits against C4 (labels, pairs, degrees, and WL-1 all
	// satisfied) but the executor proves it empty: a false admit charged
	// to the deepest filter, wl1.
	tri := postMatch(t, base, "c4", triPattern, nil)
	if _, triSum := readStream(t, tri); triSum["rejected_by"] != nil {
		t.Fatalf("triangle on C4 should admit, got rejected_by=%v", triSum["rejected_by"])
	} else if triSum["embeddings"].(float64) != 0 {
		t.Fatalf("triangle on C4 found %v embeddings, want 0", triSum["embeddings"])
	}
	doc = getMetrics(t, base)
	if got := prefilterMetric(t, doc, "prefilter_false_admits", "wl1"); got != 1 {
		t.Errorf("prefilter_false_admits[wl1] = %v, want 1", got)
	}

	// An admitted query with results is not a false admit.
	if n := matchCount(t, base, "c4", pathPattern2); n == 0 {
		t.Fatal("path-2 on C4 found nothing")
	}
	doc = getMetrics(t, base)
	if got := prefilterMetric(t, doc, "prefilter_false_admits", "wl1"); got != 1 {
		t.Errorf("false_admits moved on a non-empty query: %v", got)
	}

	// Signature maintenance rides the WAL histogram family.
	if resp, mdoc := postMutate(t, base, "c4", `{"mutations":[{"op":"delete_edge","src":0,"dst":1}]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: %d %v", resp.StatusCode, mdoc)
	}
	doc = getMetrics(t, base)
	if got := histCount(t, doc, "wal", "signature"); got < 1 {
		t.Errorf("latency.wal.signature count = %v, want >= 1 after a commit", got)
	}
}

// TestPrefilterDisabled proves -prefilter=off is a real kill switch: the
// same impossible query executes (empty, no rejected_by) and no prefilter
// counter moves.
func TestPrefilterDisabled(t *testing.T) {
	base, _ := startServer(t, Config{DisablePrefilter: true}, map[string]*graph.Graph{
		"k6": graph.Clique(6, 0),
	})
	_, sum := readStream(t, postMatch(t, base, "k6", impossiblePattern, nil))
	if sum["rejected_by"] != nil {
		t.Fatalf("prefilter disabled but query rejected: %v", sum)
	}
	if sum["embeddings"].(float64) != 0 {
		t.Fatalf("impossible query found embeddings: %v", sum)
	}
	doc := getMetrics(t, base)
	for _, fam := range []string{"prefilter_checks", "prefilter_rejects", "prefilter_false_admits"} {
		for f, v := range doc[fam].(map[string]any) {
			if v.(float64) != 0 {
				t.Errorf("%s[%s] = %v with prefilter disabled", fam, f, v)
			}
		}
	}
}

// TestPrefilterShardedE2E is the issue's acceptance scenario: against a
// live-mutating sharded graph, label-impossible queries are rejected
// before the scatter — visible in the reject counters and in a scatter
// histogram that does not move — with zero false rejects, and the reject
// ratio over the impossible workload is at least 90%.
func TestPrefilterShardedE2E(t *testing.T) {
	base, _ := startShardedServer(t, Config{}, shardTestGraph(40, 50, 7), 4)

	scatterBefore := histCount(t, getMetrics(t, base), "shard", "scatter")

	const rounds = 20
	rejected := 0
	for i := 0; i < rounds; i++ {
		// Interleave mutations so signatures are checked mid-ingest: drop a
		// ring edge, then put it back two rounds later.
		if i%2 == 0 {
			r := i / 2
			op := "delete_edge"
			if i%4 == 2 {
				op, r = "insert_edge", r-1
			}
			body := fmt.Sprintf(`{"mutations":[{"op":%q,"src":%d,"dst":%d}]}`, op, r, r+1)
			if resp, doc := postMutate(t, base, "sharded", body); resp.StatusCode != http.StatusOK {
				t.Fatalf("round %d mutate: %d %v", i, resp.StatusCode, doc)
			}
		}
		_, sum := readStream(t, postMatch(t, base, "sharded", impossiblePattern, nil))
		if sum["rejected_by"] != nil {
			rejected++
			if sum["embeddings"].(float64) != 0 {
				t.Fatalf("round %d: reject with embeddings: %v", i, sum)
			}
			if sum["sharded"] != true {
				t.Fatalf("round %d: sharded reject summary missing sharded flag: %v", i, sum)
			}
		}
	}
	if ratio := float64(rejected) / rounds; ratio < 0.9 {
		t.Fatalf("reject ratio %.2f, want >= 0.9", ratio)
	}

	doc := getMetrics(t, base)
	if got := histCount(t, doc, "shard", "scatter"); got != scatterBefore {
		t.Fatalf("rejected queries scattered: scatter count %v -> %v", scatterBefore, got)
	}
	if got := prefilterMetric(t, doc, "prefilter_rejects", "nbr-label"); got < rounds {
		t.Errorf("prefilter_rejects[nbr-label] = %v, want >= %d", got, rounds)
	}

	// Zero false rejects: every pattern the executor can satisfy must be
	// admitted, and the scatter path still works after all that ingest.
	if n := matchCount(t, base, "sharded", pathPattern2); n == 0 {
		t.Fatal("possible pattern found nothing after mutations")
	}
	if got := histCount(t, getMetrics(t, base), "shard", "scatter"); got <= scatterBefore {
		t.Fatal("admitted query did not scatter (counter dead?)")
	}

	// The Prometheus rendering carries the same counters, labeled per
	// filter, plus the signature-maintenance histogram.
	prom := getBody(t, base+"/metrics?format=prom")
	for _, want := range []string{
		`csce_prefilter_checks{filter="nbr-label"}`,
		`csce_prefilter_rejects{filter="nbr-label"}`,
		`csce_prefilter_false_admits{filter="wl1"}`,
		`csce_wal_latency_seconds_bucket{op="signature"`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prom exposition missing %s", want)
		}
	}

	// Vertex-induced on a sharded graph keeps its 422 contract even for
	// label-impossible patterns: unsupported variant beats "no results".
	resp := postMatch(t, base, "sharded", impossiblePattern, url.Values{"variant": {"vertex"}})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("sharded vertex-induced status %d, want 422", resp.StatusCode)
	}
	resp.Body.Close()
}

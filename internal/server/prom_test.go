package server

import (
	"io"
	"net/http"
	"net/url"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"csce/internal/graph"
)

func fetchProm(t *testing.T, base string, viaHeader bool) string {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	if viaHeader {
		req.Header.Set("Accept", "text/plain")
	} else {
		req.URL.RawQuery = "format=prom"
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestPromExposition(t *testing.T) {
	base, _ := startServer(t, Config{}, map[string]*graph.Graph{"g": pathOf(4)})

	// Generate traffic for every metric class: queries, a mutation, and an
	// endpoint histogram observation.
	resp := postMatch(t, base, "g", pathPattern2, url.Values{})
	readStream(t, resp)
	if mresp, _ := postMutate(t, base, "g", `{"mutations":[{"op":"insert_edge","src":0,"dst":2}]}`); mresp.StatusCode != http.StatusOK {
		t.Fatalf("mutate status %d", mresp.StatusCode)
	}

	for _, viaHeader := range []bool{false, true} {
		body := fetchProm(t, base, viaHeader)

		for _, want := range []string{
			"# TYPE csce_queries_total counter",
			"csce_queries_total 1",
			"csce_mutations_ok 1",
			"# TYPE csce_match_slots gauge",
			"# TYPE csce_live_epoch gauge",
			`csce_live_epoch{graph="g"} 1`,
			`csce_live_edges_inserted{graph="g"} 1`,
			"# TYPE csce_phase_latency_seconds histogram",
			"# TYPE csce_endpoint_latency_seconds histogram",
			`csce_endpoint_latency_seconds_bucket{endpoint="match",le="+Inf"} 1`,
			`csce_endpoint_latency_seconds_count{endpoint="match"} 1`,
		} {
			if !strings.Contains(body, want) {
				t.Errorf("exposition missing %q (viaHeader=%v)", want, viaHeader)
			}
		}

		// Histogram sanity: buckets are cumulative (non-decreasing) and the
		// +Inf bucket equals _count for the match endpoint.
		bucketRe := regexp.MustCompile(`csce_endpoint_latency_seconds_bucket\{endpoint="match",le="([^"]+)"\} (\d+)`)
		var prev uint64
		matches := bucketRe.FindAllStringSubmatch(body, -1)
		if len(matches) < 10 {
			t.Fatalf("expected a full bucket series, got %d lines", len(matches))
		}
		for _, m := range matches {
			n, err := strconv.ParseUint(m[2], 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			if n < prev {
				t.Fatalf("bucket series not cumulative at le=%s: %d < %d", m[1], n, prev)
			}
			prev = n
		}
		last := matches[len(matches)-1]
		if last[1] != "+Inf" || last[2] != "1" {
			t.Fatalf("final bucket must be +Inf with the count: %v", last)
		}
	}

	// JSON remains the default.
	m := getMetrics(t, base)
	if _, ok := m["queries_total"]; !ok {
		t.Fatal("default /metrics must stay JSON")
	}
}

package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"testing"
	"time"

	"csce/internal/graph"
)

// resumeStream opens a subscription with from_seq and returns the line
// scanner, the hello doc, and the raw response (for non-200 assertions the
// caller uses resumeRequest instead).
func resumeStream(t *testing.T, base, graphName, pattern string, fromSeq uint64) (*bufio.Scanner, map[string]any, func()) {
	t.Helper()
	u := fmt.Sprintf("%s/v1/graphs/%s/subscribe?pattern=%s&from_seq=%d",
		base, graphName, url.QueryEscape(pattern), fromSeq)
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		var doc map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&doc)
		t.Fatalf("resume subscribe status %d: %v", resp.StatusCode, doc)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	if !sc.Scan() {
		t.Fatalf("no hello line: %v", sc.Err())
	}
	var hello map[string]any
	if err := json.Unmarshal(sc.Bytes(), &hello); err != nil {
		t.Fatal(err)
	}
	return sc, hello, func() { resp.Body.Close() }
}

// resumeRequest performs the subscribe request and returns status + body
// document without expecting a stream.
func resumeRequest(t *testing.T, base, graphName, pattern, fromSeq string) (int, map[string]any) {
	t.Helper()
	u := fmt.Sprintf("%s/v1/graphs/%s/subscribe?pattern=%s&from_seq=%s",
		base, graphName, url.QueryEscape(pattern), fromSeq)
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&doc)
	return resp.StatusCode, doc
}

// TestSubscribeResumeReplaysMissed is the HTTP acceptance check for the
// resume contract: a subscriber that joins with from_seq=0 after two
// committed batches receives every missed delta and retraction marked
// "replay":true, a caught_up line, and then live events — and the running
// sum Σdeltas − Σretractions reproduces the live match count.
func TestSubscribeResumeReplaysMissed(t *testing.T) {
	base, _ := startServer(t, Config{}, map[string]*graph.Graph{"g": pathOf(4)})
	before := matchCount(t, base, "g", pathPattern2)

	// Batch 1 (seqs 1-2): two inserts. Batch 2 (seq 3): one delete.
	resp, doc := postMutate(t, base, "g", `{"mutations":[
		{"op":"insert_edge","src":0,"dst":2},
		{"op":"insert_edge","src":1,"dst":3}
	]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate 1: %d %v", resp.StatusCode, doc)
	}
	resp, doc = postMutate(t, base, "g", `{"mutations":[
		{"op":"delete_edge","src":1,"dst":2}
	]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate 2: %d %v", resp.StatusCode, doc)
	}
	// (The mutate doc's "retractions" counts deliveries to live
	// subscribers, and none are registered yet — the replay below must
	// still reproduce the retract events from the log.)
	after := matchCount(t, base, "g", pathPattern2)

	sc, hello, closeSub := resumeStream(t, base, "g", pathPattern2, 0)
	defer closeSub()
	if hello["resume_from"] != "0" {
		t.Fatalf("hello lacks resume_from: %v", hello)
	}

	var sum int64
	var commits, retracts int
	caughtUp := false
	for !caughtUp {
		if !sc.Scan() {
			t.Fatalf("stream ended before caught_up: %v", sc.Err())
		}
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev["caught_up"] == true {
			caughtUp = true
			break
		}
		if ev["replay"] != true {
			t.Fatalf("pre-caught_up event lacks replay flag: %v", ev)
		}
		switch ev["kind"] {
		case "delta":
			sum++
		case "retract":
			sum--
			retracts++
		case "commit":
			commits++
		default:
			t.Fatalf("unexpected replayed event: %v", ev)
		}
	}
	if commits != 2 {
		t.Fatalf("replayed %d commit markers, want 2", commits)
	}
	if retracts == 0 {
		t.Fatal("replay of a delete batch must carry retract events")
	}
	if got, want := sum, int64(after)-int64(before); got != want {
		t.Fatalf("replayed Σdeltas−Σretractions = %d, want %d", got, want)
	}

	// Live hand-off: the next commit arrives unmarked, at the next seq.
	resp, doc = postMutate(t, base, "g", `{"mutations":[{"op":"insert_edge","src":1,"dst":2}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate 3: %d %v", resp.StatusCode, doc)
	}
	liveSeq := doc["last_seq"].(float64)
	for {
		if !sc.Scan() {
			t.Fatalf("live stream ended: %v", sc.Err())
		}
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if _, replayed := ev["replay"]; replayed {
			t.Fatalf("live event carries replay flag: %v", ev)
		}
		if ev["kind"] == "commit" {
			if ev["seq"].(float64) != liveSeq {
				t.Fatalf("live commit at seq %v, want %v", ev["seq"], liveSeq)
			}
			break
		}
	}

	m := getMetrics(t, base)
	if metric(t, m, "subscriptions_resumed") != 1 {
		t.Fatalf("subscriptions_resumed: %v", m["subscriptions_resumed"])
	}
}

// TestSubscribeResumeGoneAndBadSeq pins the failure surface: a from_seq
// below the retained window is 410 Gone with the oldest resumable seq in
// the body; a future or unparsable from_seq is 400.
func TestSubscribeResumeGoneAndBadSeq(t *testing.T) {
	base, _ := startServer(t, Config{WALRetention: 2}, map[string]*graph.Graph{"g": pathOf(6)})
	for i := 0; i < 3; i++ {
		resp, doc := postMutate(t, base, "g", fmt.Sprintf(`{"mutations":[
			{"op":"insert_edge","src":0,"dst":%d},
			{"op":"insert_edge","src":1,"dst":%d}
		]}`, i+2, i+3))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mutate %d: %d %v", i, resp.StatusCode, doc)
		}
	}
	// Seqs 1..6 committed, retention 2: oldest resumable is 4.

	status, doc := resumeRequest(t, base, "g", pathPattern2, "1")
	if status != http.StatusGone {
		t.Fatalf("truncated from_seq: status %d %v, want 410", status, doc)
	}
	if doc["oldest_seq"].(float64) != 4 {
		t.Fatalf("410 body lacks oldest_seq=4: %v", doc)
	}

	// Exactly the boundary works.
	sc, _, closeSub := resumeStream(t, base, "g", pathPattern2, 4)
	if !sc.Scan() {
		t.Fatal("no replay output from boundary resume")
	}
	closeSub()

	if status, doc = resumeRequest(t, base, "g", pathPattern2, "999"); status != http.StatusBadRequest {
		t.Fatalf("future from_seq: status %d %v, want 400", status, doc)
	}
	if status, doc = resumeRequest(t, base, "g", pathPattern2, "abc"); status != http.StatusBadRequest {
		t.Fatalf("garbage from_seq: status %d %v, want 400", status, doc)
	}

	m := getMetrics(t, base)
	if metric(t, m, "subscriptions_gone") != 1 {
		t.Fatalf("subscriptions_gone: %v", m["subscriptions_gone"])
	}
}

// TestSubscribeResumeAcrossRestart pins the restart-transparent contract
// end to end: a durable server commits a history, shuts down, and a fresh
// process on the same WAL directory serves the same resume window — 410
// only for seqs the window had already truncated BEFORE the restart, a
// replay for everything else that reproduces the count equation, and live
// hand-off at the next seq.
func TestSubscribeResumeAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{WALRetention: 2, WALDir: dir}
	base, s := startServer(t, cfg, map[string]*graph.Graph{"g": pathOf(6)})
	// Three batches of two inserts: seqs 1..6, retention 2 → oldest 4.
	var midCount uint64
	for i := 0; i < 3; i++ {
		resp, doc := postMutate(t, base, "g", fmt.Sprintf(`{"mutations":[
			{"op":"insert_edge","src":0,"dst":%d},
			{"op":"insert_edge","src":1,"dst":%d}
		]}`, i+2, i+3))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mutate %d: %d %v", i, resp.StatusCode, doc)
		}
		if i == 1 {
			midCount = matchCount(t, base, "g", pathPattern2) // state at seq 4
		}
	}
	finalCount := matchCount(t, base, "g", pathPattern2)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	base2, _ := startServer(t, cfg, map[string]*graph.Graph{"g": pathOf(6)})
	if got := matchCount(t, base2, "g", pathPattern2); got != finalCount {
		t.Fatalf("restarted count %d, want %d", got, finalCount)
	}

	// Only a seq the pre-restart window had already truncated is Gone —
	// and the body still names the true boundary.
	status, doc := resumeRequest(t, base2, "g", pathPattern2, "3")
	if status != http.StatusGone {
		t.Fatalf("truncated from_seq after restart: status %d %v, want 410", status, doc)
	}
	if doc["oldest_seq"].(float64) != 4 {
		t.Fatalf("410 body lacks oldest_seq=4: %v", doc)
	}

	// A pre-restart seq inside the window replays as if the process never
	// died: Σdeltas − Σretractions bridges the state at seq 4 to now.
	sc, hello, closeSub := resumeStream(t, base2, "g", pathPattern2, 4)
	defer closeSub()
	if hello["resume_from"] != "4" {
		t.Fatalf("hello lacks resume_from=4: %v", hello)
	}
	var sum int64
	var lastCommit float64
	for {
		if !sc.Scan() {
			t.Fatalf("stream ended before caught_up: %v", sc.Err())
		}
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev["caught_up"] == true {
			break
		}
		if ev["replay"] != true {
			t.Fatalf("pre-caught_up event lacks replay flag: %v", ev)
		}
		switch ev["kind"] {
		case "delta":
			sum++
		case "retract":
			sum--
		case "commit":
			lastCommit = ev["seq"].(float64)
		}
	}
	if lastCommit != 6 {
		t.Fatalf("replay's final commit at seq %v, want 6", lastCommit)
	}
	if got, want := sum, int64(finalCount)-int64(midCount); got != want {
		t.Fatalf("cross-restart Σdeltas−Σretractions = %d, want %d", got, want)
	}

	// Live hand-off continues the same seq space.
	resp, doc := postMutate(t, base2, "g", `{"mutations":[{"op":"delete_edge","src":0,"dst":2}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart mutate: %d %v", resp.StatusCode, doc)
	}
	if doc["last_seq"].(float64) != 7 {
		t.Fatalf("post-restart batch at seq %v, want 7", doc["last_seq"])
	}
	for {
		if !sc.Scan() {
			t.Fatalf("live stream ended: %v", sc.Err())
		}
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev["kind"] == "commit" {
			if ev["seq"].(float64) != 7 {
				t.Fatalf("live commit at seq %v, want 7", ev["seq"])
			}
			break
		}
	}
}

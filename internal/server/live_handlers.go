package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"csce/internal/graph"
	"csce/internal/live"
	"csce/internal/obs"
)

// mutationDoc is the wire form of one mutation. Labels travel by name and
// are interned through the graph's shared label table, exactly like
// pattern labels; a graph registered without a table only accepts the
// empty (unlabeled) name.
type mutationDoc struct {
	Op    string         `json:"op"` // add_vertex | insert_edge | delete_edge
	Src   graph.VertexID `json:"src"`
	Dst   graph.VertexID `json:"dst"`
	Label string         `json:"label"`
}

type mutateRequest struct {
	Mutations []mutationDoc `json:"mutations"`
}

// resolveMutations converts wire mutations to typed ones. Interning label
// names mutates the shared table, so the caller must hold s.names.
func resolveMutations(docs []mutationDoc, names *graph.LabelTable) ([]live.Mutation, error) {
	out := make([]live.Mutation, 0, len(docs))
	for i, d := range docs {
		var m live.Mutation
		switch d.Op {
		case live.OpAddVertex.String():
			m.Op = live.OpAddVertex
			if d.Label != "" && names == nil {
				return nil, fmt.Errorf("mutation %d: graph has no label table; only unlabeled mutations are accepted", i)
			}
			if names != nil {
				m.VertexLabel = names.Vertex(d.Label)
				// The durable WAL persists the name, not just the interned
				// id: ids are assigned in arrival order and would drift on
				// a restart that replays in a different order than labels
				// were first seen.
				m.LabelName = d.Label
				m.LabelNamed = true
			}
		case live.OpInsertEdge.String(), live.OpDeleteEdge.String():
			m.Op = live.OpInsertEdge
			if d.Op == live.OpDeleteEdge.String() {
				m.Op = live.OpDeleteEdge
			}
			m.Src, m.Dst = d.Src, d.Dst
			if d.Label != "" && names == nil {
				return nil, fmt.Errorf("mutation %d: graph has no label table; only unlabeled mutations are accepted", i)
			}
			if names != nil {
				m.EdgeLabel = names.Edge(d.Label)
				m.LabelName = d.Label
				m.LabelNamed = true
			}
		default:
			return nil, fmt.Errorf("mutation %d: unknown op %q (add_vertex, insert_edge, delete_edge)", i, d.Op)
		}
		out = append(out, m)
	}
	return out, nil
}

// handleMutate applies one batch of mutations atomically and reports the
// assigned WAL sequence range and the epoch that made it visible.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	tr := s.newTrace()
	w.Header().Set("X-Trace-Id", string(tr.ID))
	rctx := obs.WithTrace(r.Context(), tr)

	s.metrics.mutationsTotal.Add(1)
	name := r.PathValue("name")
	ent, ok := s.reg.Get(name)
	if !ok {
		s.metrics.mutationsBadRequest.Add(1)
		jsonError(w, http.StatusNotFound, fmt.Sprintf("unknown graph %q", name))
		return
	}
	var req mutateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxPatternBytes))
	if err := dec.Decode(&req); err != nil {
		s.metrics.mutationsBadRequest.Add(1)
		jsonError(w, http.StatusBadRequest, fmt.Sprintf("parse body: %v", err))
		return
	}
	if n := len(req.Mutations); n == 0 || n > s.cfg.MaxMutationsPerBatch {
		s.metrics.mutationsBadRequest.Add(1)
		jsonError(w, http.StatusBadRequest,
			fmt.Sprintf("batch must hold 1..%d mutations, got %d", s.cfg.MaxMutationsPerBatch, n))
		return
	}
	s.names.Lock()
	muts, err := resolveMutations(req.Mutations, ent.Names)
	s.names.Unlock()
	if err != nil {
		s.metrics.mutationsBadRequest.Add(1)
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}

	// Mutations queue on their own valve: saturating it returns 429 here
	// without ever consuming a match slot.
	if admErr := s.mutAdm.admit(rctx); admErr != nil {
		if errors.Is(admErr, ErrQueueFull) {
			s.metrics.mutationsRejected.Add(1)
			w.Header().Set("Retry-After", "1")
			jsonError(w, http.StatusTooManyRequests, "mutation queue full, retry later")
			return
		}
		jsonError(w, http.StatusServiceUnavailable, "cancelled while queued")
		return
	}
	defer s.mutAdm.release()

	if ent.Sharded != nil {
		s.mutateSharded(w, tr, rctx, start, ent, muts)
		return
	}

	com, err := ent.Live.Mutate(rctx, muts)
	if err != nil {
		if errors.Is(err, live.ErrClosed) {
			jsonError(w, http.StatusServiceUnavailable, "graph is closed")
			return
		}
		s.metrics.mutationsFailed.Add(1)
		// The error doc carries trace_id too: a rejected batch's apply span
		// is often exactly what the operator wants to see.
		writeJSON(w, http.StatusUnprocessableEntity, map[string]any{
			"error":    err.Error(),
			"trace_id": tr.ID,
		})
		s.log.Warn("mutation batch rejected", "trace_id", tr.ID, "graph", ent.Name, "error", err)
		tr.Finish("http.mutate", obs.Str("graph", ent.Name), obs.Str("outcome", "rejected"),
			obs.Int("mutations", int64(len(muts))))
		return
	}
	s.metrics.mutationsOK.Add(1)
	s.log.Info("mutation batch",
		"trace_id", tr.ID,
		"graph", ent.Name,
		"mutations", len(muts),
		"epoch", com.Epoch,
		"last_seq", com.LastSeq,
		"deltas", com.Deltas,
		"total_ms", durMs(time.Since(start)),
	)
	doc := map[string]any{
		"applied":     len(muts),
		"trace_id":    tr.ID,
		"first_seq":   com.FirstSeq,
		"last_seq":    com.LastSeq,
		"epoch":       com.Epoch,
		"deltas":      com.Deltas,
		"retractions": com.Retractions,
	}
	if len(com.AddedVertices) > 0 {
		doc["added_vertices"] = com.AddedVertices
	}
	tr.Finish("http.mutate",
		obs.Str("graph", ent.Name),
		obs.Str("outcome", "ok"),
		obs.Int("mutations", int64(len(muts))),
		obs.Int("epoch", int64(com.Epoch)),
		obs.Int("first_seq", int64(com.FirstSeq)),
		obs.Int("last_seq", int64(com.LastSeq)),
		obs.Int("deltas", int64(com.Deltas)))
	writeJSON(w, http.StatusOK, doc)
}

// handleSubscribe registers a continuous query and streams its delta
// embeddings as NDJSON until the client disconnects, the graph closes, or
// the subscriber falls too far behind and is dropped.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	tr := s.newTrace()
	w.Header().Set("X-Trace-Id", string(tr.ID))

	name := r.PathValue("name")
	ent, ok := s.reg.Get(name)
	if !ok {
		jsonError(w, http.StatusNotFound, fmt.Sprintf("unknown graph %q", name))
		return
	}
	if ent.Sharded != nil {
		// Continuous queries would need delta embeddings joined across
		// shards; sharded graphs serve /match only.
		jsonError(w, http.StatusUnprocessableEntity,
			"sharded graphs do not support subscriptions; poll /match instead")
		return
	}
	q := r.URL.Query()
	text := q.Get("pattern")
	if text == "" {
		jsonError(w, http.StatusBadRequest, "missing pattern query parameter (URL-encoded edge-list text)")
		return
	}
	var variant graph.Variant
	switch v := q.Get("variant"); v {
	case "", "edge":
		variant = graph.EdgeInduced
	case "homo":
		variant = graph.Homomorphic
	case "vertex":
		jsonError(w, http.StatusBadRequest, live.ErrVertexInduced.Error())
		return
	default:
		jsonError(w, http.StatusBadRequest, fmt.Sprintf("unknown variant %q (edge, homo)", v))
		return
	}
	s.names.Lock()
	names := ent.Names
	if names == nil {
		names = graph.NewLabelTable()
	}
	p, err := graph.ParseStringWith(text, names)
	s.names.Unlock()
	if err != nil {
		jsonError(w, http.StatusBadRequest, fmt.Sprintf("parse pattern: %v", err))
		return
	}

	// ?from_seq=N (N may be 0: "replay all retained history") switches to
	// the resume protocol: missed events replay from the retained WAL
	// before the stream hands over to live commits, gapless.
	var res *live.Resume
	var sub *live.Subscription
	if raw := q.Get("from_seq"); raw != "" {
		fromSeq, perr := strconv.ParseUint(raw, 10, 64)
		if perr != nil {
			jsonError(w, http.StatusBadRequest, fmt.Sprintf("bad from_seq %q", raw))
			return
		}
		res, err = ent.Live.ResumeSubscribe(p, variant, fromSeq)
		if err != nil {
			switch {
			case errors.Is(err, live.ErrSeqTruncated):
				// 410 Gone: the history needed for a gapless resume has
				// been truncated; the client must recount from a fresh
				// /match instead of trusting its running sum.
				s.metrics.subscriptionsGone.Add(1)
				writeJSON(w, http.StatusGone, map[string]any{
					"error":      err.Error(),
					"trace_id":   tr.ID,
					"oldest_seq": ent.Live.OldestResumableSeq(),
					"last_seq":   ent.Live.Stats().LastSeq,
				})
			case errors.Is(err, live.ErrSeqFuture):
				jsonError(w, http.StatusBadRequest, err.Error())
			case errors.Is(err, live.ErrClosed):
				jsonError(w, http.StatusServiceUnavailable, "graph is closed")
			default:
				jsonError(w, http.StatusBadRequest, err.Error())
			}
			return
		}
		sub = res.Live()
		s.metrics.subscriptionsResumed.Add(1)
	} else {
		sub, err = ent.Live.Subscribe(p, variant)
		if err != nil {
			switch {
			case errors.Is(err, live.ErrClosed):
				jsonError(w, http.StatusServiceUnavailable, "graph is closed")
			default:
				jsonError(w, http.StatusBadRequest, err.Error())
			}
			return
		}
	}
	defer sub.Close()
	s.metrics.subscriptionsOpened.Add(1)
	s.log.Info("subscription opened", "trace_id", tr.ID, "graph", ent.Name,
		"epoch", sub.JoinEpoch(), "resume", res != nil)

	// The subscription trace finishes when the stream ends (however it
	// ends), covering the whole lifetime with the delivery counts.
	var eventsSent, replayed int64
	defer func() {
		dropped := "false"
		if sub.Dropped() {
			dropped = "true"
		}
		tr.Finish("http.subscribe",
			obs.Str("graph", ent.Name),
			obs.Int("join_epoch", int64(sub.JoinEpoch())),
			obs.Int("events", eventsSent),
			obs.Int("replayed", replayed),
			obs.Str("dropped", dropped))
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	writeLine := func(doc map[string]any) bool {
		line, _ := json.Marshal(doc)
		if _, err := w.Write(append(line, '\n')); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	hello := map[string]any{
		"subscribed": true,
		"trace_id":   tr.ID,
		"graph":      ent.Name,
		"epoch":      sub.JoinEpoch(),
		"variant":    variant.String(),
	}
	if res != nil {
		hello["resume_from"] = q.Get("from_seq")
	}
	if !writeLine(hello) {
		return
	}

	if res != nil {
		// Replayed events carry "replay":true; after the caught_up line
		// every event is live. Seqs are gapless across the hand-off.
		errClientGone := errors.New("client gone")
		rerr := res.Replay(r.Context(), func(ev live.Event) error {
			doc := s.eventDoc(ent, ev)
			doc["replay"] = true
			if !writeLine(doc) {
				return errClientGone
			}
			replayed++
			return nil
		})
		if rerr != nil {
			s.log.Warn("resume replay ended early", "trace_id", tr.ID, "graph", ent.Name, "error", rerr)
			return
		}
		if !writeLine(map[string]any{"caught_up": true}) {
			return
		}
	}

	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-sub.Events():
			if !ok {
				// Channel closed by Close/CloseAll or a slow-consumer drop;
				// tell the client which before ending the stream. The
				// trace_id matches the hello line and X-Trace-Id header, so
				// both ends of the stream correlate to the same trace.
				_ = writeLine(map[string]any{"done": true, "trace_id": tr.ID, "dropped": sub.Dropped()})
				return
			}
			if !writeLine(s.eventDoc(ent, ev)) {
				return
			}
			eventsSent++
		}
	}
}

// eventDoc renders one subscription event. The edge label name is looked
// up under the interning lock: the table is append-only, but concurrent
// pattern parses may be appending.
func (s *Server) eventDoc(ent *Entry, ev live.Event) map[string]any {
	switch ev.Kind {
	case live.EventCommit:
		return map[string]any{
			"kind":        "commit",
			"seq":         ev.Seq,
			"epoch":       ev.Epoch,
			"deltas":      ev.Deltas,
			"retractions": ev.Retractions,
		}
	default:
		kind := "delta"
		if ev.Kind == live.EventRetract {
			kind = "retract"
		}
		label := ""
		if ent.Names != nil {
			s.names.Lock()
			label = ent.Names.EdgeName(ev.EdgeLabel)
			s.names.Unlock()
		}
		return map[string]any{
			"kind":      kind,
			"seq":       ev.Seq,
			"epoch":     ev.Epoch,
			"src":       ev.Src,
			"dst":       ev.Dst,
			"label":     label,
			"embedding": ev.Embedding,
		}
	}
}

// handleSlowlogThreshold retunes the slow-query capture threshold at
// runtime: {"threshold_ms": 250}. 0 disables capture; the ring buffer and
// its history are kept.
func (s *Server) handleSlowlogThreshold(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ThresholdMs *float64 `json:"threshold_ms"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096))
	if err := dec.Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, fmt.Sprintf("parse body: %v", err))
		return
	}
	if req.ThresholdMs == nil || *req.ThresholdMs < 0 {
		jsonError(w, http.StatusBadRequest, "threshold_ms must be a number >= 0")
		return
	}
	d := time.Duration(*req.ThresholdMs * float64(time.Millisecond))
	s.slowlog.SetThreshold(d)
	s.log.Info("slowlog threshold updated", "threshold_ms", durMs(d))
	writeJSON(w, http.StatusOK, map[string]any{"threshold_ms": durMs(s.slowlog.Threshold())})
}

// liveDoc snapshots every single-store graph's live-ingest counters for
// /metrics. Sharded graphs report per shard under the "shard" block.
func (s *Server) liveDoc() map[string]live.Stats {
	entries := s.reg.List()
	out := make(map[string]live.Stats, len(entries))
	for _, e := range entries {
		if e.Live == nil {
			continue
		}
		out[e.Name] = e.Live.Stats()
	}
	return out
}

package server

import (
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"csce/internal/core"
	"csce/internal/graph"
	"csce/internal/shard"
)

// startShardedServer boots a daemon serving the same graph twice: once as
// a plain single-store entry ("solo") and once partitioned into k shards
// behind a coordinator ("sharded"), so tests can compare the two paths on
// identical data.
func startShardedServer(t *testing.T, cfg Config, g *graph.Graph, k int) (string, *Server) {
	t.Helper()
	base, s := startServer(t, cfg, map[string]*graph.Graph{"solo": g})
	if _, err := s.Registry().AddSharded("sharded", core.NewEngine(g), k, shard.SchemeID); err != nil {
		t.Fatal(err)
	}
	return base, s
}

// shardTestGraph builds a deterministic connected random graph: a ring for
// connectivity plus extra chords, all vertices label 0.
func shardTestGraph(n, extra int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(false)
	b.AddVertices(n, 0)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.VertexID(i), graph.VertexID((i+1)%n), 0)
	}
	seen := make(map[[2]int]bool, extra)
	for len(seen) < extra {
		u, v := rng.Intn(n), rng.Intn(n)
		if u > v {
			u, v = v, u
		}
		if u == v || v == u+1 || (u == 0 && v == n-1) || seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		b.AddEdge(graph.VertexID(u), graph.VertexID(v), 0)
	}
	return b.MustBuild()
}

func getBody(t *testing.T, u string) string {
	t.Helper()
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", u, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestShardedMatchParity(t *testing.T) {
	base, _ := startShardedServer(t, Config{}, shardTestGraph(48, 120, 7), 4)

	for _, pattern := range []string{pathPattern2, pathPattern3, triPattern} {
		_, soloSum := readStream(t, postMatch(t, base, "solo", pattern, nil))
		_, shardSum := readStream(t, postMatch(t, base, "sharded", pattern, nil))
		if soloSum["embeddings"] != shardSum["embeddings"] {
			t.Fatalf("pattern %q: sharded counted %v embeddings, single-store %v",
				pattern, shardSum["embeddings"], soloSum["embeddings"])
		}
		if shardSum["sharded"] != true {
			t.Fatalf("sharded summary not flagged: %v", shardSum)
		}
		if n, _ := shardSum["twigs"].(float64); n < 1 {
			t.Fatalf("sharded summary missing twigs: %v", shardSum)
		}
		if eps, _ := shardSum["epochs"].([]any); len(eps) != 4 {
			t.Fatalf("sharded summary should carry a 4-entry epoch vector: %v", shardSum)
		}
	}

	// The homomorphic variant must agree too (no injectivity filter at the
	// join).
	homo := url.Values{"variant": {"homo"}}
	_, soloSum := readStream(t, postMatch(t, base, "solo", triPattern, homo))
	_, shardSum := readStream(t, postMatch(t, base, "sharded", triPattern, homo))
	if soloSum["embeddings"] != shardSum["embeddings"] {
		t.Fatalf("homomorphic: sharded %v != single-store %v",
			shardSum["embeddings"], soloSum["embeddings"])
	}
}

func TestShardedDecompCacheAndEpochInvalidation(t *testing.T) {
	base, _ := startShardedServer(t, Config{}, pathOf(10), 4)

	_, first := readStream(t, postMatch(t, base, "sharded", pathPattern3, nil))
	if first["decomp_cache"] != "miss" {
		t.Fatalf("first sharded query should miss the decomposition cache: %v", first)
	}
	_, second := readStream(t, postMatch(t, base, "sharded", pathPattern3, nil))
	if second["decomp_cache"] != "hit" {
		t.Fatalf("repeated sharded query should hit the decomposition cache: %v", second)
	}

	// A mutation bumps some shard epochs; the cache key is the epoch
	// VECTOR, so the next identical query must miss.
	resp, _ := postMutate(t, base, "sharded",
		`{"mutations":[{"op":"insert_edge","src":0,"dst":2}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate status %d", resp.StatusCode)
	}
	_, third := readStream(t, postMatch(t, base, "sharded", pathPattern3, nil))
	if third["decomp_cache"] != "miss" {
		t.Fatalf("query after mutation should miss the decomposition cache: %v", third)
	}
}

func TestShardedMutateRoutesToCoordinator(t *testing.T) {
	base, _ := startShardedServer(t, Config{}, pathOf(9), 3)

	before := matchCount(t, base, "sharded", pathPattern2)

	// Vertex 0 is owned by shard 0 and vertex 2 by shard 2 under SchemeID,
	// so the insert is a cross-shard boundary edge.
	resp, doc := postMutate(t, base, "sharded", `{"mutations":[
		{"op":"add_vertex","label":"0"},
		{"op":"insert_edge","src":0,"dst":2}
	]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate status %d: %v", resp.StatusCode, doc)
	}
	if doc["sharded"] != true {
		t.Fatalf("mutate response missing sharded flag: %v", doc)
	}
	if n, _ := doc["shards_touched"].(float64); n != 3 {
		// The add_vertex broadcasts the label row to every shard.
		t.Fatalf("shards_touched = %v, want 3: %v", doc["shards_touched"], doc)
	}
	if adds, _ := doc["added_vertices"].([]any); len(adds) != 1 || adds[0].(float64) != 9 {
		t.Fatalf("added_vertices wrong: %v", doc)
	}

	// One new undirected edge = two more ordered path-2 embeddings, and
	// both sides of the boundary must see it.
	if after := matchCount(t, base, "sharded", pathPattern2); after != before+2 {
		t.Fatalf("after cross-shard insert: %d path-2 embeddings, want %d", after, before+2)
	}

	// Deleting it restores the original count.
	resp, doc = postMutate(t, base, "sharded",
		`{"mutations":[{"op":"delete_edge","src":0,"dst":2}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d: %v", resp.StatusCode, doc)
	}
	if after := matchCount(t, base, "sharded", pathPattern2); after != before {
		t.Fatalf("after delete: %d path-2 embeddings, want %d", after, before)
	}
}

func TestShardedRejectsVertexInducedAndSubscribe(t *testing.T) {
	base, _ := startShardedServer(t, Config{}, graph.Clique(8, 0), 2)

	resp := postMatch(t, base, "sharded", triPattern, url.Values{"variant": {"vertex"}})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("vertex-induced on sharded graph: status %d, want 422", resp.StatusCode)
	}
	resp.Body.Close()

	sub, err := http.Get(base + "/v1/graphs/sharded/subscribe?pattern=" + url.QueryEscape(pathPattern2))
	if err != nil {
		t.Fatal(err)
	}
	if sub.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("subscribe on sharded graph: status %d, want 422", sub.StatusCode)
	}
	sub.Body.Close()

	// A disconnected pattern is the client's error (422), not a 500.
	disc := "t undirected\nv 0 0\nv 1 0\nv 2 0\nv 3 0\ne 0 1\ne 2 3\n"
	resp = postMatch(t, base, "sharded", disc, nil)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("disconnected pattern on sharded graph: status %d, want 422", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestShardedLoadEndpoint(t *testing.T) {
	base, _ := startServer(t, Config{}, map[string]*graph.Graph{"seed": graph.Clique(4, 0)})

	g := shardTestGraph(30, 40, 11)
	var sb strings.Builder
	if err := graph.Format(&sb, g); err != nil {
		t.Fatal(err)
	}
	body := sb.String()

	resp, doc := postJSON(t, base+"/v1/graphs/runtime?shards=4&scheme=label", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("load status %d: %v", resp.StatusCode, doc)
	}
	if doc["shards"].(float64) != 4 || doc["scheme"] != "label" {
		t.Fatalf("load response missing shard info: %v", doc)
	}
	if doc["vertices"].(float64) != 30 {
		t.Fatalf("load response vertex count: %v", doc)
	}

	// The loaded graph answers queries through the coordinator, and counts
	// match a single-store load of the same bytes.
	resp, _ = postJSON(t, base+"/v1/graphs/plain", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("plain load status %d", resp.StatusCode)
	}
	_, sum := readStream(t, postMatch(t, base, "runtime", triPattern, nil))
	if sum["sharded"] != true || sum["shards"].(float64) != 4 {
		t.Fatalf("runtime-loaded graph not sharded: %v", sum)
	}
	if plain := matchCount(t, base, "plain", triPattern); plain != uint64(sum["embeddings"].(float64)) {
		t.Fatalf("runtime sharded load counted %v, plain load %d", sum["embeddings"], plain)
	}

	// /v1/graphs reports the shard layout and epoch vector.
	listing := getBody(t, base+"/v1/graphs")
	for _, want := range []string{`"shards": 4`, `"shard_scheme": "label"`, `"epochs"`} {
		if !strings.Contains(listing, want) {
			t.Fatalf("/v1/graphs missing %s: %s", want, listing)
		}
	}

	// Duplicate name is a conflict; bad parameters are client errors.
	if resp, _ = postJSON(t, base+"/v1/graphs/runtime?shards=2", body); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate load: status %d, want 409", resp.StatusCode)
	}
	if resp, _ = postJSON(t, base+"/v1/graphs/bad?shards=0", body); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("shards=0: status %d, want 400", resp.StatusCode)
	}
	if resp, _ = postJSON(t, base+"/v1/graphs/bad?shards=2&scheme=nope", body); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad scheme: status %d, want 400", resp.StatusCode)
	}
}

func TestShardedMetricsSurface(t *testing.T) {
	base, _ := startShardedServer(t, Config{}, graph.Clique(10, 0), 3)
	for i := 0; i < 2; i++ {
		readStream(t, postMatch(t, base, "sharded", triPattern, nil))
	}

	m := getMetrics(t, base)
	if metric(t, m, "shard_queries") != 2 {
		t.Fatalf("shard_queries = %v, want 2", m["shard_queries"])
	}
	if metric(t, m, "shard_partials") < 2 {
		t.Fatalf("shard_partials did not move: %v", m["shard_partials"])
	}
	if metric(t, m, "shard_join_candidates") < 1 {
		t.Fatalf("shard_join_candidates did not move: %v", m["shard_join_candidates"])
	}
	sd, ok := m["shard"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing shard section: %v", m["shard"])
	}
	coord, ok := sd["sharded"].(map[string]any)
	if !ok {
		t.Fatalf("shard section missing coordinator doc: %v", sd)
	}
	if coord["k"].(float64) != 3 || coord["matches"].(float64) != 2 {
		t.Fatalf("coordinator doc wrong: %v", coord)
	}
	if shards, _ := coord["shards"].([]any); len(shards) != 3 {
		t.Fatalf("coordinator doc missing per-shard stats: %v", coord)
	}
	lat, ok := m["latency"].(map[string]any)
	if !ok || lat["shard"] == nil {
		t.Fatalf("metrics missing shard latency block: %v", m["latency"])
	}

	// Prometheus rendering: per-shard gauges with graph+shard labels, the
	// join-candidates counter, and the scatter/local/join histogram family.
	prom := getBody(t, base+"/metrics?format=prom")
	for _, want := range []string{
		"csce_shard_join_candidates",
		`csce_shard_vertices{graph="sharded",shard="0"}`,
		`csce_shard_boundary_edges{graph="sharded",shard="2"}`,
		`csce_shard_latency_seconds_bucket{stage="scatter"`,
		`csce_shard_latency_seconds_bucket{stage="join"`,
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("prom output missing %q", want)
		}
	}
	// A sharded graph must not leak a bogus series into the single-store
	// live families.
	if strings.Contains(prom, `csce_live_epoch{graph="sharded"}`) {
		t.Fatalf("sharded graph leaked into live families")
	}
}

package bench

import (
	"fmt"
	"strings"

	"csce/internal/baseline"
	"csce/internal/graph"
)

// runTable3 prints the algorithm capability matrix (Table III), including
// the CSCE row.
func runTable3(cfg Config) error {
	cfg = cfg.withDefaults()
	w := cfg.Out
	header(w, "Table III: algorithms compared",
		"Algorithm", "Variants", "VLabels", "ELabels", "Direction", "MaxPattern")
	row := func(name string, variants []graph.Variant, vl, el bool, dir string, maxP int) {
		var vs []string
		for _, v := range variants {
			switch v {
			case graph.EdgeInduced:
				vs = append(vs, "E")
			case graph.Homomorphic:
				vs = append(vs, "H")
			case graph.VertexInduced:
				vs = append(vs, "V")
			}
		}
		cell(w, name, strings.Join(vs, ","), yesNo(vl), yesNo(el), dir, maxP)
	}
	for _, m := range baseline.All() {
		c := m.Capabilities()
		row(c.Name, c.Variants, c.VertexLabels, c.EdgeLabels, dirString(c.Directed, c.Undirected), c.MaxTested)
	}
	row("CSCE (this work)", graph.Variants(), true, true, "U and D", 2000)
	return nil
}

func yesNo(b bool) string {
	if b {
		return "Yes"
	}
	return "No"
}

func dirString(d, u bool) string {
	switch {
	case d && u:
		return "U and D"
	case d:
		return "D"
	default:
		return "U"
	}
}

// runTable4 prints Table IV: statistics of the (synthetic analogue)
// datasets, plus the original scale they stand in for.
func runTable4(cfg Config) error {
	cfg = cfg.withDefaults()
	w := cfg.Out
	header(w, "Table IV: dataset statistics (synthetic analogues)",
		"Dataset", "Dir", "Vertices", "Edges", "Labels", "AvgDeg", "MaxIn", "MaxOut", "PaperScale")
	specs := catalogFor(cfg)
	for _, spec := range specs {
		g := loadGraph(spec)
		s := graph.ComputeStats(spec.Name, g)
		cell(w, s.Name, map[bool]string{true: "D", false: "U"}[s.Directed],
			s.VertexCount, s.EdgeCount, s.LabelCount,
			fmt.Sprintf("%.1f", s.AvgDegree), s.MaxInDegree, s.MaxOutDegree,
			fmt.Sprintf("%dv/%de", spec.PaperVertices, spec.PaperEdges))
	}
	return nil
}

package bench

import (
	"testing"
	"time"

	"csce/internal/baseline"
	"csce/internal/core"
	"csce/internal/dataset"
	"csce/internal/graph"
	"csce/internal/plan"
)

// These tests assert the *direction* of the paper's findings on small
// deterministic workloads, so a regression that flips a comparison fails
// loudly even though the full-scale numbers live in EXPERIMENTS.md.

// findingFixture builds a small labeled PPI-like graph and a dense pattern.
func findingFixture(t testing.TB) (*graph.Graph, *core.Engine, *graph.Graph) {
	t.Helper()
	spec := dataset.Spec{Name: "finding", Kind: dataset.PPI, Vertices: 800, TargetEdges: 3600, VertexLabels: 6, Seed: 404}
	g := spec.Generate()
	engine := core.NewEngine(g)
	patterns, err := dataset.SamplePatterns(g, dataset.PatternConfig{Size: 8, Dense: true, Count: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return g, engine, patterns[0]
}

// TestFinding1CSCEBeatsBaselines: CSCE's total time undercuts every
// supporting baseline on a labeled dense-pattern workload.
func TestFinding1CSCEBeatsBaselines(t *testing.T) {
	g, engine, p := findingFixture(t)
	res, err := engine.Match(p, core.MatchOptions{Variant: graph.EdgeInduced, TimeLimit: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exec.TimedOut {
		t.Fatal("fixture too hard for the assertion")
	}
	csceTime := res.Total()
	for _, m := range []baseline.Matcher{baseline.NewBacktrack(), baseline.NewBacktrackFSP(), baseline.NewJoinWCOJ()} {
		b, err := m.Match(g, p, graph.EdgeInduced, baseline.Options{TimeLimit: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if b.Embeddings != res.Embeddings && !b.TimedOut {
			t.Fatalf("%s disagrees on the count: %d vs %d",
				m.Capabilities().Name, b.Embeddings, res.Embeddings)
		}
		if !b.TimedOut && b.Elapsed < csceTime {
			t.Fatalf("Finding 1 violated: %s (%v) faster than CSCE (%v)",
				m.Capabilities().Name, b.Elapsed, csceTime)
		}
	}
}

// TestFinding2SymmetryBreakingPlanCostGrows: the SymBreak plan phase cost
// increases steeply with pattern size.
func TestFinding2SymmetryBreakingPlanCostGrows(t *testing.T) {
	g, _, _ := findingFixture(t)
	m := baseline.NewSymBreak()
	m.PlanBudget = 2 * time.Second
	var prev time.Duration
	grew := false
	for _, size := range []int{4, 6, 8} {
		patterns, err := dataset.SamplePatterns(g, dataset.PatternConfig{Size: size, Dense: false, Count: 1, Seed: 17})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Match(g, patterns[0], graph.EdgeInduced, baseline.Options{TimeLimit: 100 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if res.PlanTime > 4*prev && prev > 0 {
			grew = true
		}
		prev = res.PlanTime
	}
	if !grew {
		t.Fatalf("Finding 2: expected super-linear plan-cost growth, last plan time %v", prev)
	}
}

// TestFinding6VariantCountOrdering: vertex-induced counts never exceed
// edge-induced counts, and edge-induced throughput exceeds vertex-induced
// on identical inputs (skipping the negation work).
func TestFinding6VariantCountOrdering(t *testing.T) {
	_, engine, p := findingFixture(t)
	edge, err := engine.Match(p, core.MatchOptions{Variant: graph.EdgeInduced, TimeLimit: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	vertex, err := engine.Match(p, core.MatchOptions{Variant: graph.VertexInduced, TimeLimit: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if vertex.Embeddings > edge.Embeddings {
		t.Fatalf("vertex-induced (%d) exceeds edge-induced (%d)", vertex.Embeddings, edge.Embeddings)
	}
}

// TestFinding12SCEFrequencyOnLargePatterns: a majority of the vertices of
// large sampled patterns exhibit SCE in the edge-induced variant.
func TestFinding12SCEFrequencyOnLargePatterns(t *testing.T) {
	g, engine, _ := findingFixture(t)
	patterns, err := dataset.SamplePatterns(g, dataset.PatternConfig{Size: 24, Dense: false, Count: 2, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range patterns {
		pl, _, err := engine.PlanOnly(p, graph.EdgeInduced)
		if err != nil {
			t.Fatal(err)
		}
		if pl.SCE.Ratio() < 0.3 {
			t.Fatalf("Finding 12: SCE ratio %.2f unexpectedly low on a sparse 24-vertex pattern",
				pl.SCE.Ratio())
		}
	}
}

// TestFinding13ClusterTieBreakImproves: the cluster-aware plan solves the
// fixture no slower than pure RI (averaged over a few patterns to absorb
// noise, and compared on executor steps rather than wall time).
func TestFinding13ClusterTieBreakImproves(t *testing.T) {
	g, engine, _ := findingFixture(t)
	patterns, err := dataset.SamplePatterns(g, dataset.PatternConfig{Size: 8, Dense: true, Count: 3, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	var riSteps, clusterSteps uint64
	for _, p := range patterns {
		ri, err := engine.Match(p, core.MatchOptions{Variant: graph.EdgeInduced, Mode: plan.ModeRI, TimeLimit: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		cl, err := engine.Match(p, core.MatchOptions{Variant: graph.EdgeInduced, Mode: plan.ModeRICluster, TimeLimit: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if ri.Embeddings != cl.Embeddings {
			t.Fatalf("plan modes disagree: %d vs %d", ri.Embeddings, cl.Embeddings)
		}
		riSteps += ri.Exec.Steps
		clusterSteps += cl.Exec.Steps
	}
	// Allow parity (ties broken identically) but fail if the data-aware
	// plan is meaningfully worse.
	if clusterSteps > riSteps+riSteps/5 {
		t.Fatalf("Finding 13: cluster tie-breaking regressed steps: %d vs %d", clusterSteps, riSteps)
	}
}

// TestCaseStudyDirection: motif-based clustering beats edge-based
// clustering on a small planted-community graph (asserted via the
// casestudy experiment's underlying package in motifcluster tests; here we
// assert the clique-enumeration speed side: CSCE with symmetry breaking
// enumerates cliques faster than plain backtracking).
func TestCaseStudyCliqueSpeed(t *testing.T) {
	spec := dataset.EmailEU()
	spec.Vertices = 240
	spec.Communities = 12
	g, _ := spec.GenerateWithCommunities()
	engine := core.NewEngine(g)
	p := dataset.CliquePattern(g, 6)

	res, err := engine.Match(p, core.MatchOptions{
		Variant:          graph.EdgeInduced,
		SymmetryBreaking: true,
		TimeLimit:        5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exec.TimedOut || res.Embeddings == 0 {
		t.Fatalf("clique fixture degenerate: %+v", res.Exec)
	}
	bt, err := baseline.NewBacktrack().Match(g, p, graph.EdgeInduced,
		baseline.Options{TimeLimit: res.Total() * 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bt.TimedOut && bt.Elapsed < res.Total() {
		t.Fatalf("case study: backtracking (%v) beat CSCE (%v) on clique enumeration",
			bt.Elapsed, res.Total())
	}
}

package bench

import (
	"fmt"
	"math/rand"
	"time"

	"csce/internal/core"
	"csce/internal/graph"
	"csce/internal/plan"
)

// runFig10 measures plan-generation scalability: time and memory of the
// full optimization pipeline for patterns up to 2000 vertices on the
// Patent analogue relabeled with 2000 labels, for all three variants
// (Finding 10: up to 2000 vertices within the paper's budget;
// homomorphism optimizes fastest because its DAG carries no negation
// dependencies).
func runFig10(cfg Config) error {
	cfg = cfg.withDefaults()
	w := cfg.Out
	spec := quickSpec(mustSpec("Patent").WithLabels(2000), cfg)
	g, engine := loadEngine(spec)

	sizes := []int{8, 16, 32, 64, 128, 256, 512, 1000, 2000}
	if cfg.Quick {
		sizes = []int{8, 16, 32, 64}
	}
	header(w, "Fig. 10: plan generation scalability (Patent, 2000 labels)",
		"PatternSize", "Variant", "PlanTime", "PlanMemMB")
	rng := rand.New(rand.NewSource(1000))
	for _, size := range sizes {
		if size >= g.NumVertices() {
			fmt.Fprintf(w, "# size %d exceeds the scaled data graph (skipped)\n", size)
			continue
		}
		p, err := sampleAnyPattern(g, size, rng)
		if err != nil {
			fmt.Fprintf(w, "# size %d: %v (skipped)\n", size, err)
			continue
		}
		for _, variant := range graph.Variants() {
			var planTime time.Duration
			mem := heapDelta(func() {
				_, t, err2 := engine.PlanOnly(p, variant)
				planTime = t
				err = err2
			})
			if err != nil {
				return err
			}
			cell(w, size, variant, planTime, fmt.Sprintf("%.2f", float64(mem)/1e6))
		}
	}
	return nil
}

// runFig11 measures CCSR read overhead: ReadCSR time and decompressed
// bytes across data graph label counts (20/200/2000) and pattern sizes
// (Finding 11: overhead acceptable, grows with labels).
func runFig11(cfg Config) error {
	cfg = cfg.withDefaults()
	w := cfg.Out

	labelCounts := []int{20, 200, 2000}
	sizes := []int{3, 4, 8, 32, 128, 512, 2000}
	if cfg.Quick {
		labelCounts = []int{20, 200}
		sizes = []int{3, 8, 32}
	}
	header(w, "Fig. 11: CCSR read overhead (Patent analogue)",
		"Labels", "PatternSize", "ReadTime", "Clusters", "ViewMB")
	for _, labels := range labelCounts {
		spec := quickSpec(mustSpec("Patent").WithLabels(labels), cfg)
		g, engine := loadEngine(spec)
		rng := rand.New(rand.NewSource(1100 + int64(labels)))
		for _, size := range sizes {
			if size >= g.NumVertices() {
				continue
			}
			p, err := sampleAnyPattern(g, size, rng)
			if err != nil {
				fmt.Fprintf(w, "# labels %d size %d: %v (skipped)\n", labels, size, err)
				continue
			}
			// Measure only the read stage: run the pipeline with a match
			// limit of one embedding so execution cost stays negligible.
			res, err := engine.Match(p, core.MatchOptions{
				Variant:   graph.EdgeInduced,
				Mode:      plan.ModeCSCE,
				Limit:     1,
				TimeLimit: cfg.TimeLimit,
			})
			if err != nil {
				return err
			}
			cell(w, labels, size, res.ReadTime, res.ClustersRead,
				fmt.Sprintf("%.2f", float64(res.ViewBytes)/1e6))
		}
	}
	return nil
}

package bench

import (
	"fmt"

	"csce/internal/baseline"
	"csce/internal/dataset"
	"csce/internal/graph"
	"csce/internal/motifcluster"
)

// backtrackMatcher is the shared plain-backtracking baseline instance.
var backtrackMatcher = baseline.NewBacktrack()

// runCaseStudy reproduces Section VII-G: clustering an EMAIL-EU-style
// communication graph by department. Edge-based clustering is compared
// with 8-clique higher-order clustering (the paper: F1 0.398 -> 0.515),
// and the 8-clique enumeration time of CSCE is compared against plain
// backtracking (the paper: 11.57s -> 0.39s).
func runCaseStudy(cfg Config) error {
	cfg = cfg.withDefaults()
	w := cfg.Out
	spec := dataset.EmailEU()
	k := 8
	if cfg.Quick {
		spec.Vertices = 200
		spec.Communities = 10
		spec.IntraProb = 0.55
		k = 4
	}
	g, truth := spec.GenerateWithCommunities()

	res, err := motifcluster.Run(g, truth, k)
	if err != nil {
		return err
	}
	header(w, "Case study: EMAIL-EU higher-order clustering",
		"Method", "F1", "Clusters")
	cell(w, "edge-based", fmt.Sprintf("%.3f", res.EdgeF1), res.EdgeClusters)
	cell(w, fmt.Sprintf("%d-clique", k), fmt.Sprintf("%.3f", res.MotifF1), res.MotifClusters)

	header(w, "Case study: k-clique enumeration time",
		"Engine", "Instances", "Time")
	cell(w, "CSCE(+symbreak)", res.CliqueInstances, res.CliqueTime)

	// Plain backtracking enumerates all ordered embeddings; dividing by the
	// clique's automorphism count (k!) yields instances for comparison.
	bres, ok := baselinePoint(backtrackMatcher, g, dataset.CliquePattern(g, k), graph.EdgeInduced, cfg)
	if ok {
		factorial := uint64(1)
		for i := 2; i <= k; i++ {
			factorial *= uint64(i)
		}
		note := ""
		if bres.TimedOut {
			note = " (timed out)"
		}
		cell(w, "Backtrack"+note, bres.Embeddings/factorial, bres.Elapsed)
	}
	return nil
}

package bench

import (
	"fmt"
	"math/rand"
	"time"

	"csce/internal/core"
	"csce/internal/dataset"
	"csce/internal/graph"
)

// runFig14 covers the less-effective-scenario analyses: (a) the impact of
// symmetry breaking on small-to-large DIP patterns — marginal and
// diminishing (Finding 2, Fig. 14a) — and (b) throughput versus pattern
// density (Fig. 14b: throughput drops on denser patterns but CSCE stays
// ahead of plain backtracking).
func runFig14(cfg Config) error {
	cfg = cfg.withDefaults()
	w := cfg.Out
	spec := quickSpec(mustSpec("DIP"), cfg)
	g, engine := loadEngine(spec)

	// ---- (a) symmetry breaking impact ----
	sizes := []int{3, 4, 5, 8, 9}
	if cfg.Quick {
		sizes = []int{3, 4, 5}
	}
	header(w, "Fig. 14a: symmetry breaking on DIP (CSCE with/without)",
		"PatternSize", "Plain", "SymBreak", "PlanShare", "|Aut|")
	rng := rand.New(rand.NewSource(1400))
	for _, size := range sizes {
		p, err := sampleAnyPattern(g, size, rng)
		if err != nil {
			fmt.Fprintf(w, "# size %d: %v (skipped)\n", size, err)
			continue
		}
		plain, err := engine.Match(p, core.MatchOptions{Variant: graph.EdgeInduced, TimeLimit: cfg.TimeLimit})
		if err != nil {
			return err
		}
		symStart := time.Now()
		sym, err := engine.Match(p, core.MatchOptions{
			Variant:          graph.EdgeInduced,
			TimeLimit:        cfg.TimeLimit,
			SymmetryBreaking: true,
		})
		if err != nil {
			return err
		}
		symTotal := time.Since(symStart)
		planShare := "-"
		if symTotal > 0 {
			planShare = fmt.Sprintf("%.0f%%", 100*float64(sym.PlanTime)/float64(symTotal))
		}
		cell(w, size, csceTotalOrLimit(plain, cfg), csceTotalOrLimit(sym, cfg), planShare, sym.Automorphisms)
	}

	// ---- (b) throughput vs pattern density ----
	header(w, "Fig. 14b: throughput vs pattern density (DIP, size 8)",
		"Density", "CSCE/s", "Backtrack/s")
	densities := []bool{false, true} // sparse, dense
	for _, dense := range densities {
		patterns, err := samplePatterns(g, 8, dense, cfg.PatternsPerConfig, 1450)
		if err != nil {
			fmt.Fprintf(w, "# dense=%v: %v (skipped)\n", dense, err)
			continue
		}
		var emb, bemb uint64
		var total, btotal time.Duration
		for _, p := range patterns {
			res, err := cscePoint(engine, p, graph.EdgeInduced, cfg)
			if err != nil {
				continue
			}
			emb += res.Embeddings
			total += csceTotalOrLimit(res, cfg)
			if br, ok := baselinePoint(backtrackMatcher, g, p, graph.EdgeInduced, cfg); ok {
				bemb += br.Embeddings
				if br.TimedOut {
					btotal += cfg.TimeLimit
				} else {
					btotal += br.Elapsed
				}
			}
		}
		name := dataset.PatternConfig{Size: 8, Dense: dense}.Name()
		cell(w, name, throughputOf(emb, total), throughputOf(bemb, btotal))
	}
	return nil
}

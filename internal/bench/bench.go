// Package bench is the experiment harness: one registered experiment per
// table and figure of the paper's evaluation (Section VII), each printing
// the same rows or series the paper reports. The cmd/cscebench binary and
// the root-level Go benchmarks drive this package; EXPERIMENTS.md records
// paper-versus-measured outcomes.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"csce/internal/baseline"
	"csce/internal/core"
	"csce/internal/dataset"
	"csce/internal/graph"
)

// Config bounds an experiment run. The defaults keep the full suite at
// laptop scale; Quick shrinks it further for smoke tests.
type Config struct {
	Out io.Writer
	// TimeLimit bounds each individual matching task; timed-out tasks are
	// reported at the limit, following the paper's convention.
	TimeLimit time.Duration
	// PatternsPerConfig is how many sampled patterns are averaged per
	// configuration (the paper uses 10).
	PatternsPerConfig int
	// Quick trims datasets and pattern sizes for smoke testing.
	Quick bool
}

func (c Config) withDefaults() Config {
	if c.Out == nil {
		c.Out = io.Discard
	}
	if c.TimeLimit == 0 {
		c.TimeLimit = time.Second
	}
	if c.PatternsPerConfig == 0 {
		c.PatternsPerConfig = 2
	}
	return c
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	ID    string // e.g. "fig6"
	Title string // the paper artifact it reproduces
	Run   func(cfg Config) error
}

// All returns the experiments in paper order.
func All() []Experiment {
	return []Experiment{
		{"table3", "Table III: algorithm capability matrix", runTable3},
		{"table4", "Table IV: dataset statistics", runTable4},
		{"fig6", "Fig. 6: total time per dataset/pattern/variant/algorithm", runFig6},
		{"fig7", "Fig. 7: edge- vs vertex-induced on RoadCA", runFig7},
		{"fig8", "Fig. 8: edge-induced throughput on RoadCA", runFig8},
		{"fig9", "Fig. 9: scalability by number of embeddings (DIP)", runFig9},
		{"fig10", "Fig. 10: plan-generation scalability to 2000-vertex patterns", runFig10},
		{"fig11", "Fig. 11: CCSR read overhead by labels and pattern size", runFig11},
		{"fig12", "Fig. 12: SCE occurrence on Patent patterns", runFig12},
		{"fig13", "Fig. 13: query plan quality (RM/RI/RI+Cluster/CSCE)", runFig13},
		{"fig14", "Fig. 14: symmetry breaking and pattern density on DIP", runFig14},
		{"casestudy", "Sec. VII-G: higher-order clustering of EMAIL-EU", runCaseStudy},
		{"ablation", "Extra: SCE cache / factorization / NEC ablations", runAblation},
		{"extensions", "Extra: parallel, incremental updates, delta matching", runExtensions},
	}
}

// ByID resolves one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---- shared dataset / engine caches ----
//
// Experiments share generated datasets and their clustered engines so the
// suite does not regenerate multi-hundred-thousand-edge graphs per figure.

var (
	cacheMu     sync.Mutex
	graphCache  = map[string]*graph.Graph{}
	engineCache = map[string]*core.Engine{}
)

func loadGraph(spec dataset.Spec) *graph.Graph {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if g, ok := graphCache[spec.Name]; ok {
		return g
	}
	g := spec.Generate()
	graphCache[spec.Name] = g
	return g
}

func loadEngine(spec dataset.Spec) (*graph.Graph, *core.Engine) {
	g := loadGraph(spec)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if e, ok := engineCache[spec.Name]; ok {
		return g, e
	}
	e := core.NewEngine(g)
	engineCache[spec.Name] = e
	return g, e
}

// catalogFor returns the dataset specs an experiment should touch: the
// full Table IV catalog normally, a small subset in Quick mode.
func catalogFor(cfg Config) []dataset.Spec {
	if !cfg.Quick {
		return dataset.Catalog()
	}
	var out []dataset.Spec
	for _, s := range dataset.Catalog() {
		switch s.Name {
		case "DIP", "Yeast", "Human":
			out = append(out, s)
		}
	}
	return out
}

func mustSpec(name string) dataset.Spec {
	s, ok := dataset.ByName(name)
	if !ok {
		panic("bench: unknown dataset " + name)
	}
	return s
}

// quickSpec shrinks a dataset for Quick runs.
func quickSpec(s dataset.Spec, cfg Config) dataset.Spec {
	if !cfg.Quick {
		return s
	}
	s.Name = s.Name + "-q"
	if s.Vertices > 3000 {
		scale := float64(3000) / float64(s.Vertices)
		s.Vertices = 3000
		s.TargetEdges = int(float64(s.TargetEdges) * scale)
		if s.TargetEdges < 6000 {
			s.TargetEdges = 6000
		}
	}
	return s
}

// ---- row helpers ----

func header(w io.Writer, title string, cols ...string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(w, "  ")
		}
		fmt.Fprintf(w, "%-14s", c)
	}
	fmt.Fprintln(w)
}

func cell(w io.Writer, vals ...any) {
	for i, v := range vals {
		if i > 0 {
			fmt.Fprint(w, "  ")
		}
		switch x := v.(type) {
		case time.Duration:
			fmt.Fprintf(w, "%-14s", fmtDuration(x))
		case float64:
			fmt.Fprintf(w, "%-14.3g", x)
		default:
			fmt.Fprintf(w, "%-14v", x)
		}
	}
	fmt.Fprintln(w)
}

func fmtDuration(d time.Duration) string {
	switch {
	case d <= 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fus", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// heapDelta runs fn and returns the heap growth it caused, the coarse peak
// memory proxy used by Figs. 10/11.
func heapDelta(fn func()) int64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	d := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if d < 0 {
		d = 0
	}
	return d
}

// samplePatterns draws patterns with a per-figure seed so experiments are
// independent yet reproducible.
func samplePatterns(g *graph.Graph, size int, dense bool, count int, seed int64) ([]*graph.Graph, error) {
	cfg := dataset.PatternConfig{Size: size, Dense: dense, Count: count, Seed: seed}
	return dataset.SamplePatterns(g, cfg)
}

// sampleAnyPattern samples without enforcing the dense/sparse split (used
// by sweeps whose exact density does not matter).
func sampleAnyPattern(g *graph.Graph, size int, rng *rand.Rand) (*graph.Graph, error) {
	p, err := dataset.SamplePattern(g, size, false, rng)
	if err == nil {
		return p, nil
	}
	return dataset.SamplePattern(g, size, true, rng)
}

// cscePoint runs the CSCE engine once under the experiment's limits.
func cscePoint(e *core.Engine, p *graph.Graph, variant graph.Variant, cfg Config) (core.MatchResult, error) {
	return e.Match(p, core.MatchOptions{Variant: variant, TimeLimit: cfg.TimeLimit})
}

// baselinePoint runs one baseline, mapping unsupported combinations to a
// skip (the paper leaves those cells blank).
func baselinePoint(m baseline.Matcher, g, p *graph.Graph, variant graph.Variant, cfg Config) (baseline.Result, bool) {
	res, err := m.Match(g, p, variant, baseline.Options{TimeLimit: cfg.TimeLimit})
	if err != nil {
		return baseline.Result{}, false
	}
	return res, true
}

// geoMeanDuration summarizes per-pattern times the way the paper's bars do.
func meanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range ds {
		total += d
	}
	return total / time.Duration(len(ds))
}

func sortDurations(ds []time.Duration) {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
}

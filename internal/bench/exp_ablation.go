package bench

import (
	"fmt"
	"time"

	"csce/internal/core"
	"csce/internal/delta"
	"csce/internal/graph"
)

// runAblation quantifies each CSCE design choice in isolation on the same
// workload: SCE candidate caching, factorized counting, NEC sharing (via
// the cache), and the cluster index (approximated by the RI-vs-RI+Cluster
// plan gap measured in Fig. 13). This experiment is not a paper artifact;
// it substantiates the design-decision claims in DESIGN.md.
func runAblation(cfg Config) error {
	cfg = cfg.withDefaults()
	w := cfg.Out
	// Sparse unlabeled patterns on the DIP analogue create the conditionally
	// independent regions SCE exploits; a fixed embedding budget keeps the
	// comparison bounded while still being large enough for the
	// optimizations to matter.
	spec := quickSpec(mustSpec("DIP"), cfg)
	g, engine := loadEngine(spec)

	size := 7
	var countBudget uint64 = 2_000_000
	if cfg.Quick {
		size = 5
		countBudget = 100_000
	}
	patterns, err := samplePatterns(g, size, false, cfg.PatternsPerConfig, 2000)
	if err != nil {
		return err
	}

	type variantRun struct {
		name string
		opts core.MatchOptions
	}
	runs := []variantRun{
		{"full", core.MatchOptions{}},
		{"no-sce-cache", core.MatchOptions{DisableSCECache: true}},
		{"no-factorization", core.MatchOptions{DisableFactorization: true}},
		{"neither", core.MatchOptions{DisableSCECache: true, DisableFactorization: true}},
	}
	header(w, "Ablation: SCE optimizations on DIP sparse patterns (bounded count)",
		"Config", "MeanTime", "Steps", "Builds", "Reuses", "NECShares", "Factorized")
	for _, r := range runs {
		var total time.Duration
		var steps, builds, reuses, nec, fact uint64
		for _, p := range patterns {
			opts := r.opts
			opts.Variant = graph.EdgeInduced
			opts.TimeLimit = cfg.TimeLimit
			opts.Limit = countBudget
			res, err := engine.Match(p, opts)
			if err != nil {
				return err
			}
			total += csceTotalOrLimit(res, cfg)
			steps += res.Exec.Steps
			builds += res.Exec.CandidateBuilds
			reuses += res.Exec.CandidateReuses
			nec += res.Exec.NECShares
			fact += res.Exec.FactorizedLevels
		}
		cell(w, r.name, total/time.Duration(len(patterns)), steps, builds, reuses, nec, fact)
	}
	return nil
}

// runExtensions measures the extension subsystems: parallel scaling,
// incremental update throughput, and continuous (delta) matching against
// full recounting.
func runExtensions(cfg Config) error {
	cfg = cfg.withDefaults()
	w := cfg.Out
	spec := quickSpec(mustSpec("Yeast"), cfg)
	g, engine := loadEngine(spec)

	// ---- parallel scaling ----
	size := 10
	if cfg.Quick {
		size = 8
	}
	patterns, err := samplePatterns(g, size, true, cfg.PatternsPerConfig, 2100)
	if err != nil {
		return err
	}
	header(w, "Extension: parallel execution scaling (Yeast)",
		"Workers", "MeanExecTime", "Embeddings")
	for _, workers := range []int{1, 2, 4, 8} {
		var total time.Duration
		var emb uint64
		for _, p := range patterns {
			res, err := engine.Match(p, core.MatchOptions{
				Variant:   graph.EdgeInduced,
				TimeLimit: cfg.TimeLimit,
				Workers:   workers,
			})
			if err != nil {
				return err
			}
			total += res.ExecTime
			emb += res.Embeddings
		}
		cell(w, workers, total/time.Duration(len(patterns)), emb)
	}

	// ---- incremental updates ----
	header(w, "Extension: incremental CCSR updates (Yeast)",
		"Operation", "Ops", "TotalTime", "PerOp")
	const ops = 3000
	start := time.Now()
	var inserted [][2]graph.VertexID
	n := g.NumVertices()
	for i := 0; len(inserted) < ops; i++ {
		src := graph.VertexID((i * 7919) % n)
		dst := graph.VertexID((i*104729 + 1) % n)
		if src == dst {
			continue
		}
		if err := engine.InsertEdge(src, dst, 9); err != nil {
			continue
		}
		inserted = append(inserted, [2]graph.VertexID{src, dst})
	}
	insertTime := time.Since(start)
	cell(w, "insert", len(inserted), insertTime, insertTime/time.Duration(len(inserted)))
	start = time.Now()
	for _, e := range inserted {
		if err := engine.DeleteEdge(e[0], e[1], 9); err != nil {
			return err
		}
	}
	deleteTime := time.Since(start)
	cell(w, "delete", len(inserted), deleteTime, deleteTime/time.Duration(len(inserted)))

	// ---- continuous matching vs recount ----
	header(w, "Extension: delta matching vs full recount (Yeast)",
		"Method", "Events", "TotalTime", "PerEvent")
	p := patterns[0]
	events := 50
	if cfg.Quick {
		events = 10
	}
	// Delta path.
	start = time.Now()
	processed := 0
	for i := 0; processed < events; i++ {
		src := graph.VertexID((i * 6151) % n)
		dst := graph.VertexID((i*13007 + 3) % n)
		if src == dst {
			continue
		}
		if err := engine.InsertEdge(src, dst, 0); err != nil {
			continue
		}
		if _, err := delta.NewEmbeddings(engine.Store(), p, delta.Edge{Src: src, Dst: dst},
			delta.Options{Variant: graph.EdgeInduced}); err != nil {
			return err
		}
		if err := engine.DeleteEdge(src, dst, 0); err != nil {
			return err
		}
		processed++
	}
	deltaTime := time.Since(start)
	cell(w, "delta", processed, deltaTime, deltaTime/time.Duration(processed))
	// Recount path (same events, full matching per event).
	start = time.Now()
	processed = 0
	for i := 0; processed < events; i++ {
		src := graph.VertexID((i * 6151) % n)
		dst := graph.VertexID((i*13007 + 3) % n)
		if src == dst {
			continue
		}
		if err := engine.InsertEdge(src, dst, 0); err != nil {
			continue
		}
		if _, err := engine.Match(p, core.MatchOptions{Variant: graph.EdgeInduced, TimeLimit: cfg.TimeLimit}); err != nil {
			return err
		}
		if err := engine.DeleteEdge(src, dst, 0); err != nil {
			return err
		}
		processed++
	}
	recountTime := time.Since(start)
	cell(w, "recount", processed, recountTime, recountTime/time.Duration(processed))
	if deltaTime < recountTime {
		fmt.Fprintf(w, "# delta matching is %.1fx faster per event\n",
			float64(recountTime)/float64(deltaTime))
	}
	return nil
}

package bench

import (
	"fmt"
	"time"

	"csce/internal/baseline"
	"csce/internal/core"
	"csce/internal/dataset"
	"csce/internal/graph"
)

// fig6Task describes one sub-figure of Fig. 6: a dataset, the variant the
// paper runs there, and the pattern configurations on its x-axis.
type fig6Task struct {
	dataset string
	variant graph.Variant
	// configs: (size, dense) pairs; dense is ignored for graphs too sparse
	// to host dense samples.
	sizes []int
	dense bool
}

// runFig6 regenerates the total-time comparison of Fig. 6: for each
// dataset x pattern configuration x variant, the mean end-to-end time of
// CSCE and every baseline supporting the combination. Timed-out runs are
// charged the time limit, like the paper.
func runFig6(cfg Config) error {
	cfg = cfg.withDefaults()
	w := cfg.Out

	tasks := []fig6Task{
		{"DIP", graph.EdgeInduced, []int{4, 8}, false},           // (a)
		{"DIP", graph.VertexInduced, []int{4, 8}, false},         // (b)
		{"RoadCA", graph.EdgeInduced, []int{8, 16}, false},       // (c)
		{"RoadCA", graph.VertexInduced, []int{8, 16}, false},     // (d)
		{"Human", graph.EdgeInduced, []int{8, 16}, true},         // (e)
		{"Yeast", graph.EdgeInduced, []int{8, 16}, true},         // (i)
		{"HPRD", graph.EdgeInduced, []int{8, 16}, true},          // (j)
		{"Subcategory", graph.Homomorphic, []int{4, 8}, false},   // (m)
		{"Subcategory", graph.VertexInduced, []int{4, 8}, false}, // (n)
		{"LiveJournal", graph.Homomorphic, []int{4, 8}, false},   // (l)
	}
	if cfg.Quick {
		tasks = []fig6Task{
			{"DIP", graph.EdgeInduced, []int{4, 6}, false},
			{"Yeast", graph.EdgeInduced, []int{6}, true},
		}
	}

	header(w, "Fig. 6: mean total time per algorithm (timeouts charged at limit)",
		"Dataset", "Variant", "Pattern", "Algorithm", "MeanTime", "Solved")
	for _, task := range tasks {
		spec := quickSpec(mustSpec(task.dataset), cfg)
		g, engine := loadEngine(spec)
		for _, size := range task.sizes {
			patterns, err := samplePatterns(g, size, task.dense, cfg.PatternsPerConfig, 600+int64(size))
			if err != nil {
				fmt.Fprintf(w, "# %s size %d: %v (skipped)\n", task.dataset, size, err)
				continue
			}
			pname := dataset.PatternConfig{Size: size, Dense: task.dense}.Name()

			// CSCE row.
			var times []time.Duration
			solved := 0
			for _, p := range patterns {
				res, err := cscePoint(engine, p, task.variant, cfg)
				if err != nil {
					continue
				}
				t := res.Total()
				if res.Exec.TimedOut {
					t = cfg.TimeLimit
				} else {
					solved++
				}
				times = append(times, t)
			}
			cell(w, task.dataset, task.variant, pname, "CSCE", meanDuration(times),
				fmt.Sprintf("%d/%d", solved, len(patterns)))

			// Baseline rows, only for supported combinations.
			for _, m := range baseline.All() {
				caps := m.Capabilities()
				if !caps.Supports(task.variant, g.Directed(), g.VertexLabelCount() > 1, g.EdgeLabelCount() > 0) {
					continue
				}
				var bt []time.Duration
				bsolved := 0
				for _, p := range patterns {
					res, ok := baselinePoint(m, g, p, task.variant, cfg)
					if !ok {
						continue
					}
					t := res.Elapsed
					if res.TimedOut {
						t = cfg.TimeLimit
					} else {
						bsolved++
					}
					bt = append(bt, t)
				}
				if len(bt) == 0 {
					continue
				}
				cell(w, task.dataset, task.variant, pname, caps.Name, meanDuration(bt),
					fmt.Sprintf("%d/%d", bsolved, len(patterns)))
			}
		}
	}
	return nil
}

// csceTotalOrLimit is shared by several figures: total time with timeout
// charging.
func csceTotalOrLimit(res core.MatchResult, cfg Config) time.Duration {
	if res.Exec.TimedOut {
		return cfg.TimeLimit
	}
	return res.Total()
}

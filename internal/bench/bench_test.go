package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func quickConfig(buf *bytes.Buffer) Config {
	return Config{
		Out:               buf,
		TimeLimit:         150 * time.Millisecond,
		PatternsPerConfig: 1,
		Quick:             true,
	}
}

// TestAllExperimentsRun smoke-tests every registered experiment in Quick
// mode: it must complete without error and print its header.
func TestAllExperimentsRun(t *testing.T) {
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := exp.Run(quickConfig(&buf)); err != nil {
				t.Fatalf("%s: %v", exp.ID, err)
			}
			out := buf.String()
			if !strings.Contains(out, "==") {
				t.Fatalf("%s printed no table header:\n%s", exp.ID, out)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig6"); !ok {
		t.Fatal("fig6 missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown experiment resolved")
	}
	ids := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment: %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
	}
	// Every paper artifact is covered.
	for _, want := range []string{"table3", "table4", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "casestudy"} {
		if !ids[want] {
			t.Fatalf("experiment %s not registered", want)
		}
	}
}

func TestTable3ListsCSCE(t *testing.T) {
	var buf bytes.Buffer
	if err := runTable3(quickConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"CSCE", "GraphPi", "VF3"} {
		if !strings.Contains(out, name) {
			t.Fatalf("Table III missing %s:\n%s", name, out)
		}
	}
}

func TestTable4PrintsAllQuickDatasets(t *testing.T) {
	var buf bytes.Buffer
	if err := runTable4(quickConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"DIP", "Yeast", "Human"} {
		if !strings.Contains(out, name) {
			t.Fatalf("Table IV missing %s:\n%s", name, out)
		}
	}
}

func TestFig13CoversAllPlanModes(t *testing.T) {
	var buf bytes.Buffer
	if err := runFig13(quickConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, mode := range []string{"RM", "RI", "RI+Cluster", "CSCE"} {
		if !strings.Contains(out, mode) {
			t.Fatalf("Fig. 13 missing mode %s:\n%s", mode, out)
		}
	}
}

func TestCaseStudyShowsBothMethods(t *testing.T) {
	var buf bytes.Buffer
	if err := runCaseStudy(quickConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "edge-based") || !strings.Contains(out, "clique") {
		t.Fatalf("case study output incomplete:\n%s", out)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Out == nil || c.TimeLimit == 0 || c.PatternsPerConfig == 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
}

package bench

import (
	"fmt"
	"math/rand"
	"time"

	"csce/internal/core"
	"csce/internal/graph"
	"csce/internal/plan"
)

// runFig12 measures SCE occurrence: the share of pattern vertices whose
// candidates are independent of at least one earlier vertex, for the
// edge-induced and homomorphic variants, plus the cluster-contribution
// sub-bars (Finding 12).
func runFig12(cfg Config) error {
	cfg = cfg.withDefaults()
	w := cfg.Out
	spec := quickSpec(mustSpec("Patent"), cfg)
	g, engine := loadEngine(spec)

	sizes := []int{8, 16, 32, 64, 128, 200}
	if cfg.Quick {
		sizes = []int{8, 16, 32}
	}
	header(w, "Fig. 12: SCE occurrence on Patent patterns",
		"PatternSize", "Variant", "SCE%", "Cluster%")
	rng := rand.New(rand.NewSource(1200))
	for _, size := range sizes {
		if size >= g.NumVertices() {
			continue
		}
		var patterns []*graph.Graph
		for i := 0; i < cfg.PatternsPerConfig; i++ {
			p, err := sampleAnyPattern(g, size, rng)
			if err != nil {
				fmt.Fprintf(w, "# size %d: %v (skipped)\n", size, err)
				break
			}
			patterns = append(patterns, p)
		}
		for _, variant := range []graph.Variant{graph.EdgeInduced, graph.Homomorphic, graph.VertexInduced} {
			var sceSum, clusterSum float64
			n := 0
			for _, p := range patterns {
				pl, _, err := engine.PlanOnly(p, variant)
				if err != nil {
					return err
				}
				sceSum += pl.SCE.Ratio()
				clusterSum += pl.SCE.ClusterRatio()
				n++
			}
			if n == 0 {
				continue
			}
			cluster := fmt.Sprintf("%.0f%%", 100*clusterSum/float64(n))
			if variant == graph.Homomorphic {
				cluster = "-" // homomorphism needs no injectivity sub-bar
			}
			cell(w, size, variant, fmt.Sprintf("%.0f%%", 100*sceSum/float64(n)), cluster)
		}
	}
	return nil
}

// runFig13 compares query-plan quality: the same engine executes plans
// produced by the RM heuristic, plain RI, RI with cluster tie-breaking,
// and the full CSCE pipeline (Finding 13: CSCE's plan is best).
func runFig13(cfg Config) error {
	cfg = cfg.withDefaults()
	w := cfg.Out
	spec := quickSpec(mustSpec("Patent"), cfg)
	g, engine := loadEngine(spec)

	sizes := []int{8, 16, 24}
	if cfg.Quick {
		sizes = []int{8}
	}
	header(w, "Fig. 13: plan quality on Patent (mean total time)",
		"PatternSize", "PlanMode", "MeanTime", "Solved")
	for _, size := range sizes {
		patterns, err := samplePatterns(g, size, false, cfg.PatternsPerConfig, 1300+int64(size))
		if err != nil {
			fmt.Fprintf(w, "# size %d: %v (skipped)\n", size, err)
			continue
		}
		for _, mode := range []plan.Mode{plan.ModeRM, plan.ModeRI, plan.ModeRICluster, plan.ModeCSCE, plan.ModeCostBased} {
			var times []time.Duration
			solved := 0
			for _, p := range patterns {
				res, err := engine.Match(p, core.MatchOptions{
					Variant:   graph.EdgeInduced,
					Mode:      mode,
					TimeLimit: cfg.TimeLimit,
				})
				if err != nil {
					continue
				}
				if res.Exec.TimedOut {
					times = append(times, cfg.TimeLimit)
				} else {
					times = append(times, res.Total())
					solved++
				}
			}
			cell(w, size, mode, meanDuration(times), fmt.Sprintf("%d/%d", solved, len(patterns)))
		}
	}
	return nil
}

package bench

import (
	"fmt"
	"sort"
	"time"

	"csce/internal/baseline"
	"csce/internal/graph"
)

// runFig7 compares the edge-induced and vertex-induced variants on the
// RoadCA analogue: embedding counts, total time, and throughput per
// pattern size (Findings 6).
func runFig7(cfg Config) error {
	cfg = cfg.withDefaults()
	w := cfg.Out
	spec := quickSpec(mustSpec("RoadCA"), cfg)
	g, engine := loadEngine(spec)

	sizes := []int{4, 8, 16, 32}
	if cfg.Quick {
		sizes = []int{4, 8}
	}
	header(w, "Fig. 7: edge- vs vertex-induced on RoadCA",
		"Pattern", "Variant", "Embeddings", "TotalTime", "Throughput/s")
	for _, size := range sizes {
		patterns, err := samplePatterns(g, size, false, cfg.PatternsPerConfig, 700+int64(size))
		if err != nil {
			fmt.Fprintf(w, "# size %d: %v (skipped)\n", size, err)
			continue
		}
		for _, variant := range []graph.Variant{graph.EdgeInduced, graph.VertexInduced} {
			var embeddings uint64
			var total time.Duration
			for _, p := range patterns {
				res, err := cscePoint(engine, p, variant, cfg)
				if err != nil {
					continue
				}
				embeddings += res.Embeddings
				total += csceTotalOrLimit(res, cfg)
			}
			throughput := 0.0
			if total > 0 {
				throughput = float64(embeddings) / total.Seconds()
			}
			cell(w, fmt.Sprintf("S%d", size), variant, embeddings, total, throughput)
		}
	}
	return nil
}

// runFig8 measures edge-induced throughput on RoadCA for CSCE and every
// baseline supporting it (Finding 8: larger patterns are harder).
func runFig8(cfg Config) error {
	cfg = cfg.withDefaults()
	w := cfg.Out
	spec := quickSpec(mustSpec("RoadCA"), cfg)
	g, engine := loadEngine(spec)

	sizes := []int{8, 16, 24, 32}
	if cfg.Quick {
		sizes = []int{6, 8}
	}
	header(w, "Fig. 8: edge-induced throughput on RoadCA",
		"Pattern", "Algorithm", "Embeddings", "Throughput/s")
	for _, size := range sizes {
		patterns, err := samplePatterns(g, size, false, cfg.PatternsPerConfig, 800+int64(size))
		if err != nil {
			fmt.Fprintf(w, "# size %d: %v (skipped)\n", size, err)
			continue
		}
		var emb uint64
		var total time.Duration
		for _, p := range patterns {
			res, err := cscePoint(engine, p, graph.EdgeInduced, cfg)
			if err != nil {
				continue
			}
			emb += res.Embeddings
			total += csceTotalOrLimit(res, cfg)
		}
		cell(w, fmt.Sprintf("S%d", size), "CSCE", emb, throughputOf(emb, total))

		for _, m := range baseline.All() {
			caps := m.Capabilities()
			if !caps.Supports(graph.EdgeInduced, g.Directed(), g.VertexLabelCount() > 1, false) {
				continue
			}
			var bemb uint64
			var btotal time.Duration
			any := false
			for _, p := range patterns {
				res, ok := baselinePoint(m, g, p, graph.EdgeInduced, cfg)
				if !ok {
					continue
				}
				any = true
				bemb += res.Embeddings
				if res.TimedOut {
					btotal += cfg.TimeLimit
				} else {
					btotal += res.Elapsed
				}
			}
			if any {
				cell(w, fmt.Sprintf("S%d", size), caps.Name, bemb, throughputOf(bemb, btotal))
			}
		}
	}
	return nil
}

func throughputOf(emb uint64, total time.Duration) float64 {
	if total <= 0 {
		return 0
	}
	return float64(emb) / total.Seconds()
}

// runFig9 regenerates the scalability-by-result-size study: DIP patterns
// of sizes 8 and 9, arranged in ascending embedding count, with per-
// algorithm total times (Finding 9; GraphPi's plan cost dominates).
func runFig9(cfg Config) error {
	cfg = cfg.withDefaults()
	w := cfg.Out
	spec := quickSpec(mustSpec("DIP"), cfg)
	g, engine := loadEngine(spec)

	// The paper runs sizes 8 and 9 under a 10^4-second budget; the DIP
	// analogue yields billions of embeddings at those sizes, so with this
	// harness's second-scale budget the same saturation regime sits at
	// sizes 5-6 (see EXPERIMENTS.md).
	sizes := []int{5, 6}
	count := cfg.PatternsPerConfig * 2
	if cfg.Quick {
		sizes = []int{5}
		count = 2
	}
	header(w, "Fig. 9: total time vs number of embeddings (DIP)",
		"Pattern", "Embeddings", "CSCE", "Backtrack", "FSP", "JoinWCOJ", "SymBreak(plan)")
	for _, size := range sizes {
		patterns, err := samplePatterns(g, size, false, count, 900+int64(size))
		if err != nil {
			fmt.Fprintf(w, "# size %d: %v (skipped)\n", size, err)
			continue
		}
		type point struct {
			emb   uint64
			csce  time.Duration
			base  [4]time.Duration
			extra string
		}
		var points []point
		for _, p := range patterns {
			var pt point
			res, err := cscePoint(engine, p, graph.EdgeInduced, cfg)
			if err != nil {
				continue
			}
			pt.emb = res.Embeddings
			pt.csce = csceTotalOrLimit(res, cfg)
			ms := []baseline.Matcher{
				baseline.NewBacktrack(), baseline.NewBacktrackFSP(),
				baseline.NewJoinWCOJ(), baseline.NewSymBreak(),
			}
			for i, m := range ms {
				r, ok := baselinePoint(m, g, p, graph.EdgeInduced, cfg)
				if !ok {
					continue
				}
				if r.TimedOut {
					pt.base[i] = cfg.TimeLimit
				} else {
					pt.base[i] = r.Elapsed
				}
				if i == 3 {
					pt.extra = fmtDuration(r.PlanTime)
				}
			}
			points = append(points, pt)
		}
		sort.Slice(points, func(i, j int) bool { return points[i].emb < points[j].emb })
		for _, pt := range points {
			cell(w, fmt.Sprintf("P%d", size), pt.emb, pt.csce, pt.base[0], pt.base[1], pt.base[2],
				fmt.Sprintf("%s(%s)", fmtDuration(pt.base[3]), pt.extra))
		}
	}
	return nil
}

package prefilter

import (
	"fmt"
	"sort"
	"strings"
)

// Dump renders the signature's complete state deterministically. It exists
// for the exactness gates: a signature rebuilt from a recovered store must
// Dump identically to one maintained incrementally through the same
// mutations. Cold path; it allocates freely.
func (s *Signature) Dump() string {
	s.mu.RLock()
	defer s.mu.RUnlock()

	var b strings.Builder
	fmt.Fprintf(&b, "directed=%v vertices=%d\n", s.directed, len(s.labels))
	for v, l := range s.labels {
		fmt.Fprintf(&b, "v%d label=%d deg=%d\n", v, l, s.deg[v])
	}

	pairs := make([]pairKey, 0, len(s.pair))
	for pk := range s.pair {
		pairs = append(pairs, pk)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].lo != pairs[j].lo {
			return pairs[i].lo < pairs[j].lo
		}
		return pairs[i].hi < pairs[j].hi
	})
	for _, pk := range pairs {
		fmt.Fprintf(&b, "pair (%d,%d)=%d\n", pk.lo, pk.hi, s.pair[pk])
	}

	clusters := make([]string, 0, len(s.cluster))
	for k, n := range s.cluster {
		clusters = append(clusters, fmt.Sprintf("cluster %s=%d", k, n))
	}
	sort.Strings(clusters)
	for _, line := range clusters {
		b.WriteString(line)
		b.WriteByte('\n')
	}

	labels := make([]int, 0, len(s.degHist))
	for l := range s.degHist {
		labels = append(labels, int(l))
	}
	sort.Ints(labels)
	for _, l := range labels {
		fmt.Fprintf(&b, "deghist %d=%v\n", l, s.degHist[uint16(l)].b)
	}

	wls := make([]string, 0, len(s.wl))
	for wk, e := range s.wl {
		counts := make([]string, 0, len(e.counts))
		for v, c := range e.counts {
			counts = append(counts, fmt.Sprintf("%d:%d", v, c))
		}
		sort.Strings(counts)
		wls = append(wls, fmt.Sprintf("wl %s/%d hist=%v counts=%s", wk.key, wk.side, e.h.b, strings.Join(counts, ",")))
	}
	sort.Strings(wls)
	for _, line := range wls {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

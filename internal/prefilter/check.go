package prefilter

import (
	"sync"

	"csce/internal/ccsr"
	"csce/internal/graph"
)

// The check is compile → probe → evaluate. Compile walks the pattern once
// and emits a probe program: every count the cascade will need, as data.
// Probe answers the whole program against each signature under that
// signature's read lock — one atomic observation per signature, the same
// granularity at which the shard scatter pins per-shard snapshots — and
// accumulates the answers into one sum vector. Evaluate then runs the
// cascade over the sums, coarsest filter first, so the rejecting filter is
// deterministic and independent of probing order.

// clusterNeed demands `need` data edges in cluster k (1 for homomorphic,
// the pattern's edge count in k for injective variants).
type clusterNeed struct {
	k    ccsr.Key
	need uint32
}

// degNeed demands `need` data vertices of `label` with degree >= min.
type degNeed struct {
	label graph.Label
	min   uint32
	need  uint32
}

// wlNeed demands `need` data vertices on wk's side with >= min incident
// wk-cluster edges.
type wlNeed struct {
	wk   wlKey
	min  uint32
	need uint32
}

// vreq is one pattern vertex's degree requirement.
type vreq struct {
	label graph.Label
	req   uint32
}

// wlCount is a (cluster side, count) pair, used both for one vertex's
// per-cluster tally and for the global sorted requirement list.
type wlCount struct {
	wk  wlKey
	cnt uint32
}

// triple is a distinct (direction, edge label, neighbor label) incidence
// class — the unit of the homomorphic degree requirement, where pattern
// edges in the same class may collapse onto one data edge.
type triple struct {
	in bool
	el graph.EdgeLabel
	l  graph.Label
}

type scratch struct {
	pairs    []pairKey
	clusters []clusterNeed
	degs     []degNeed
	wls      []wlNeed
	vreqs    []vreq
	wlvert   []wlCount
	wlreqs   []wlCount
	triples  []triple
	sums     []uint64
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func (sc *scratch) reset() {
	sc.pairs = sc.pairs[:0]
	sc.clusters = sc.clusters[:0]
	sc.degs = sc.degs[:0]
	sc.wls = sc.wls[:0]
	sc.vreqs = sc.vreqs[:0]
	sc.wlvert = sc.wlvert[:0]
	sc.wlreqs = sc.wlreqs[:0]
	sc.triples = sc.triples[:0]
	sc.sums = sc.sums[:0]
}

func wlKeyLess(a, b wlKey) bool {
	if a.key.Src != b.key.Src {
		return a.key.Src < b.key.Src
	}
	if a.key.Dst != b.key.Dst {
		return a.key.Dst < b.key.Dst
	}
	if a.key.Edge != b.key.Edge {
		return a.key.Edge < b.key.Edge
	}
	return a.side < b.side
}

// CheckMany runs the cascade for pattern p against the union of the given
// signatures: existence is any-signature existence and every availability
// count is the cross-signature sum. With the shard layer's
// complete-adjacency-at-owner partitioning this union can only overcount,
// so rejects remain proofs of emptiness (see the package comment).
//
//csce:hotpath
func CheckMany(sigs []*Signature, p *graph.Graph, variant graph.Variant) Decision {
	if len(sigs) == 0 || p.NumVertices() == 0 {
		return Decision{Admit: true}
	}
	directed := p.Directed()
	for _, s := range sigs {
		if s == nil || s.directed != directed {
			// Directedness mismatches are the executor's 4xx to report;
			// admitting keeps the filter's never-wrong contract trivially.
			return Decision{Admit: true}
		}
	}
	injective := variant.Injective()

	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	sc.reset()

	compilePairsClusters(sc, p, directed, injective)
	compileDegrees(sc, p, directed, injective)
	if injective {
		compileWL(sc, p, directed)
	}

	// Probe: one atomic pass per signature, summing every programmed count.
	total := len(sc.pairs) + len(sc.clusters) + len(sc.degs) + len(sc.wls)
	for len(sc.sums) < total {
		sc.sums = append(sc.sums, 0)
	}
	sums := sc.sums[:total]
	for i := range sums {
		sums[i] = 0
	}
	for _, sig := range sigs {
		sig.mu.RLock()
		i := 0
		for _, pk := range sc.pairs {
			sums[i] += uint64(sig.pair[pk])
			i++
		}
		for _, cn := range sc.clusters {
			sums[i] += uint64(sig.cluster[cn.k])
			i++
		}
		for _, dn := range sc.degs {
			if h := sig.degHist[dn.label]; h != nil {
				sums[i] += h.countAtLeast(dn.min)
			}
			i++
		}
		for _, wn := range sc.wls {
			if e := sig.wl[wn.wk]; e != nil {
				sums[i] += e.h.countAtLeast(wn.min)
			}
			i++
		}
		sig.mu.RUnlock()
	}

	// Evaluate the cascade, coarsest first.
	i := 0
	for _, pk := range sc.pairs {
		if sums[i] == 0 {
			return Decision{Filter: FilterNbrLabel, Checked: 1,
				SrcLabel: pk.lo, DstLabel: pk.hi, Needed: 1}
		}
		i++
	}
	for _, cn := range sc.clusters {
		if sums[i] < uint64(cn.need) {
			return Decision{Filter: FilterLabelPair, Checked: 2,
				SrcLabel: cn.k.Src, DstLabel: cn.k.Dst, EdgeLabel: cn.k.Edge,
				Needed: cn.need, Have: sums[i]}
		}
		i++
	}
	for _, dn := range sc.degs {
		if sums[i] < uint64(dn.need) {
			return Decision{Filter: FilterDegree, Checked: 3,
				SrcLabel: dn.label, MinCount: dn.min, Needed: dn.need, Have: sums[i]}
		}
		i++
	}
	for _, wn := range sc.wls {
		if sums[i] < uint64(wn.need) {
			other := wn.wk.key.Dst
			if wn.wk.side == 1 {
				other = wn.wk.key.Src
			}
			return Decision{Filter: FilterWL1, Checked: 4,
				SrcLabel: wn.wk.sideLabel(), DstLabel: other, EdgeLabel: wn.wk.key.Edge,
				MinCount: wn.min, Needed: wn.need, Have: sums[i]}
		}
		i++
	}
	checked := uint8(3)
	if injective {
		checked = 4
	}
	return Decision{Admit: true, Checked: checked}
}

// compilePairsClusters dedupes the pattern's label pairs (nbr-label
// probes) and exact cluster keys (label-pair probes, with per-cluster
// pattern-edge counts when the variant maps edges injectively).
func compilePairsClusters(sc *scratch, p *graph.Graph, directed, injective bool) {
	p.Edges(func(v, w graph.VertexID, el graph.EdgeLabel) {
		lv, lw := p.Label(v), p.Label(w)
		pk := newPairKey(lv, lw)
		found := false
		for _, have := range sc.pairs {
			if have == pk {
				found = true
				break
			}
		}
		if !found {
			sc.pairs = append(sc.pairs, pk)
		}
		k := ccsr.NewKey(lv, lw, el, directed)
		for i := range sc.clusters {
			if sc.clusters[i].k == k {
				if injective {
					sc.clusters[i].need++
				}
				return
			}
		}
		sc.clusters = append(sc.clusters, clusterNeed{k: k, need: 1})
	})
}

// compileDegrees computes each pattern vertex's demanded data degree and
// turns the per-label requirement multisets into rank probes.
//
// Injective variants: all pattern edges incident to u map to distinct data
// edges incident to f(u) (distinct neighbors under injectivity, and
// parallel pattern edges differ in label), so the requirement is u's full
// incident-edge count, and the i-th most demanding vertex of a label needs
// i data vertices at its degree or above (a rank/containment check).
//
// Homomorphic: pattern edges in the same (direction, edge label, neighbor
// label) class may collapse onto one data edge, while edges of distinct
// classes cannot, so the requirement is the distinct class count — and
// without injectivity all same-label pattern vertices may share one data
// vertex, so only each label's maximum requirement is probed, with need 1.
func compileDegrees(sc *scratch, p *graph.Graph, directed, injective bool) {
	n := p.NumVertices()
	for v := 0; v < n; v++ {
		u := graph.VertexID(v)
		var req uint32
		if injective {
			req = uint32(len(p.Out(u)))
			if directed {
				req += uint32(len(p.In(u)))
			}
		} else {
			sc.triples = sc.triples[:0]
			add := func(in bool, el graph.EdgeLabel, l graph.Label) {
				t := triple{in: in, el: el, l: l}
				for _, have := range sc.triples {
					if have == t {
						return
					}
				}
				sc.triples = append(sc.triples, t)
			}
			for _, nb := range p.Out(u) {
				add(false, nb.Label, p.Label(nb.To))
			}
			if directed {
				for _, nb := range p.In(u) {
					add(true, nb.Label, p.Label(nb.To))
				}
			}
			req = uint32(len(sc.triples))
		}
		sc.vreqs = append(sc.vreqs, vreq{label: p.Label(u), req: req})
	}

	// Insertion sort by (label asc, req desc); patterns are small.
	for i := 1; i < len(sc.vreqs); i++ {
		for j := i; j > 0; j-- {
			a, b := sc.vreqs[j-1], sc.vreqs[j]
			if a.label < b.label || (a.label == b.label && a.req >= b.req) {
				break
			}
			sc.vreqs[j-1], sc.vreqs[j] = b, a
		}
	}

	for i := 0; i < len(sc.vreqs); {
		label := sc.vreqs[i].label
		rank := uint32(0)
		for j := i; j < len(sc.vreqs) && sc.vreqs[j].label == label; j++ {
			rank++
			if j+1 < len(sc.vreqs) && sc.vreqs[j+1].label == label && sc.vreqs[j+1].req == sc.vreqs[j].req {
				continue // the strictest probe for this req value is at its run's end
			}
			need := rank
			if !injective {
				need = 1
			}
			sc.degs = append(sc.degs, degNeed{label: label, min: sc.vreqs[j].req, need: need})
			if !injective {
				break // only the label's maximum requirement matters
			}
		}
		for i < len(sc.vreqs) && sc.vreqs[i].label == label {
			i++
		}
	}
}

// compileWL splits each vertex's degree requirement per (cluster, side)
// and emits the same rank probes as compileDegrees against the WL-1
// histograms. Only meaningful for injective variants; for homomorphisms it
// degenerates to the label-pair existence check and is skipped.
func compileWL(sc *scratch, p *graph.Graph, directed bool) {
	bumpLocal := func(wk wlKey) {
		for i := range sc.wlvert {
			if sc.wlvert[i].wk == wk {
				sc.wlvert[i].cnt++
				return
			}
		}
		sc.wlvert = append(sc.wlvert, wlCount{wk: wk, cnt: 1})
	}
	n := p.NumVertices()
	for v := 0; v < n; v++ {
		u := graph.VertexID(v)
		lu := p.Label(u)
		sc.wlvert = sc.wlvert[:0]
		for _, nb := range p.Out(u) {
			ln := p.Label(nb.To)
			k := ccsr.NewKey(lu, ln, nb.Label, directed)
			side := uint8(0)
			if !directed && k.Src != k.Dst && lu != k.Src {
				side = 1
			}
			bumpLocal(wlKey{k, side})
		}
		if directed {
			for _, nb := range p.In(u) {
				k := ccsr.NewKey(p.Label(nb.To), lu, nb.Label, true)
				bumpLocal(wlKey{k, 1})
			}
		}
		sc.wlreqs = append(sc.wlreqs, sc.wlvert...)
	}

	// Insertion sort by (cluster side asc, cnt desc).
	for i := 1; i < len(sc.wlreqs); i++ {
		for j := i; j > 0; j-- {
			a, b := sc.wlreqs[j-1], sc.wlreqs[j]
			if wlKeyLess(a.wk, b.wk) || (a.wk == b.wk && a.cnt >= b.cnt) {
				break
			}
			sc.wlreqs[j-1], sc.wlreqs[j] = b, a
		}
	}

	rank := uint32(0)
	for i, wr := range sc.wlreqs {
		rank++
		if i+1 < len(sc.wlreqs) && sc.wlreqs[i+1].wk == wr.wk && sc.wlreqs[i+1].cnt == wr.cnt {
			continue
		}
		sc.wls = append(sc.wls, wlNeed{wk: wr.wk, min: wr.cnt, need: rank})
		if i+1 >= len(sc.wlreqs) || sc.wlreqs[i+1].wk != wr.wk {
			rank = 0
		}
	}
}

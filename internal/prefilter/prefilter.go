// Package prefilter answers "can this pattern possibly match this graph?"
// in O(pattern) time, before any plan is built, any snapshot pinned, or any
// scatter fanned out. It keeps a per-graph Signature of four nested
// summaries — neighboring-label adjacency, per-cluster edge counts,
// per-label degree histograms, and WL-1 (one-round color refinement)
// within-cluster degree histograms — each a strictly coarser view of the
// graph than the executor's, so every check is conservative: a Reject is a
// proof of emptiness, an Admit promises nothing (l2Match's label-pair /
// neighboring-label indexes, plus the degree- and WL-signature pruning the
// SynKit line of work applies per host, lifted to whole-graph admission).
//
// Signatures are exact under live ingest: internal/live updates them
// inside the WAL-commit critical section via Batch, so a published
// signature always describes a published epoch, and live.Open rebuilds
// them from the recovered store so crash recovery cannot skew a count.
//
// Soundness under sharding: internal/shard gives every shard the complete
// adjacency of the vertices it owns (boundary edges are replicated to both
// owners), so for any data vertex some shard sees its full degree. Union
// semantics over per-shard signatures — existence is any-shard existence,
// availability counts are cross-shard sums — can therefore only overcount
// (a boundary edge is counted by two shards), which is the false-admit
// direction. A Reject from CheckMany is still a proof of emptiness.
package prefilter

import (
	"fmt"
	"sync"

	"csce/internal/ccsr"
	"csce/internal/graph"
)

// Filter names one of the cascade's pre-filters, coarsest first. The names
// are wire-visible: they appear in `rejected_by` summary fields, trace
// attributes, and `csce_prefilter_*` metric labels.
type Filter string

const (
	// FilterNbrLabel rejects a pattern edge between vertex labels that are
	// never adjacent in the data graph (any edge label, any direction).
	FilterNbrLabel Filter = "nbr-label"
	// FilterLabelPair refines nbr-label with the edge label and direction:
	// the pattern edge's exact cluster must exist, and for injective
	// variants the cluster must hold at least as many data edges as the
	// pattern puts in it.
	FilterLabelPair Filter = "label-pair"
	// FilterDegree checks per-label degree-histogram containment: the i-th
	// most demanding pattern vertex of a label needs at least i data
	// vertices of that label with at least its degree. Its k=0 case is the
	// label-frequency check, so it also rejects missing labels.
	FilterDegree Filter = "degree"
	// FilterWL1 refines degree by one round of color refinement: degrees
	// are split per (cluster, side), i.e. per neighbor label x edge label x
	// direction, and containment is checked per split histogram.
	FilterWL1 Filter = "wl1"
)

// Filters returns the cascade in evaluation order (coarsest first).
func Filters() []Filter {
	return []Filter{FilterNbrLabel, FilterLabelPair, FilterDegree, FilterWL1}
}

// Decision is the outcome of a Check. It is plain-old-data so the hot path
// returns it by value without allocating; the human-readable reason is
// rendered lazily by Reason, off the hot path, only for rejected queries.
type Decision struct {
	// Admit is true when no filter could prove the pattern unmatchable.
	Admit bool
	// Filter names the rejecting filter; empty on admit.
	Filter Filter
	// Checked is how many filters of the cascade were evaluated: the
	// rejecting filter's 1-based position, or the full cascade length on
	// admit (WL-1 is skipped for homomorphic patterns, where it degenerates
	// to the label-pair check).
	Checked uint8

	// Reject context: the offending label pair / cluster and the
	// availability shortfall (Have < Needed).
	SrcLabel  graph.Label
	DstLabel  graph.Label
	EdgeLabel graph.EdgeLabel
	MinCount  uint32 // degree / WL-1: the per-vertex count demanded
	Needed    uint32
	Have      uint64
}

// Reason renders the machine-parsable shortfall behind a rejection, using
// names (which may be nil) to print label names instead of interned IDs.
func (d Decision) Reason(names *graph.LabelTable) string {
	vl := func(l graph.Label) string {
		if names != nil {
			return names.VertexName(l)
		}
		return fmt.Sprintf("L%d", l)
	}
	el := func(l graph.EdgeLabel) string {
		if names != nil && l != 0 {
			return names.EdgeName(l)
		}
		if l == 0 {
			return "NULL"
		}
		return fmt.Sprintf("e%d", l)
	}
	switch d.Filter {
	case FilterNbrLabel:
		return fmt.Sprintf("no edge between labels %s and %s exists in the graph", vl(d.SrcLabel), vl(d.DstLabel))
	case FilterLabelPair:
		return fmt.Sprintf("pattern needs %d (%s,%s,%s) edges; graph has %d",
			d.Needed, vl(d.SrcLabel), vl(d.DstLabel), el(d.EdgeLabel), d.Have)
	case FilterDegree:
		if d.MinCount == 0 {
			return fmt.Sprintf("pattern needs %d vertices with label %s; graph has %d", d.Needed, vl(d.SrcLabel), d.Have)
		}
		return fmt.Sprintf("pattern needs %d vertices with label %s and degree >= %d; graph has at most %d",
			d.Needed, vl(d.SrcLabel), d.MinCount, d.Have)
	case FilterWL1:
		return fmt.Sprintf("pattern needs %d label-%s vertices with >= %d incident (%s,%s,%s) edges; graph has at most %d",
			d.Needed, vl(d.SrcLabel), d.MinCount, vl(d.SrcLabel), vl(d.DstLabel), el(d.EdgeLabel), d.Have)
	default:
		return "admitted"
	}
}

// histBuckets covers bits.Len32 of any uint32 count (0..32) with slack.
const histBuckets = 34

// hist is a log-bucketed counter histogram: bucket i holds the number of
// tracked values v with bits.Len32(v) == i (0, 1, 2-3, 4-7, ...). Because
// v >= k implies bucket(v) >= bucket(k), summing buckets >= bucket(k)
// upper-bounds the number of values >= k — the conservative direction
// (false admits only, never false rejects).
type hist struct {
	b [histBuckets]uint32
}

//csce:hotpath
func histBucket(v uint32) int {
	// bits.Len32 by halving; inlined shape keeps the probe loop flat.
	n := 0
	for v != 0 {
		v >>= 1
		n++
	}
	return n
}

func (h *hist) add(v uint32)    { h.b[histBucket(v)]++ }
func (h *hist) remove(v uint32) { h.b[histBucket(v)]-- }

func (h *hist) move(old, new uint32) {
	ob, nb := histBucket(old), histBucket(new)
	if ob == nb {
		return
	}
	h.b[ob]--
	h.b[nb]++
}

// countAtLeast returns an upper bound on how many tracked values are >= k.
//
//csce:hotpath
func (h *hist) countAtLeast(k uint32) uint64 {
	var sum uint64
	for i := histBucket(k); i < histBuckets; i++ {
		sum += uint64(h.b[i])
	}
	return sum
}

// pairKey is an unordered vertex-label pair (the neighboring-label index
// ignores edge labels and direction).
type pairKey struct{ lo, hi graph.Label }

func newPairKey(a, b graph.Label) pairKey {
	if b < a {
		a, b = b, a
	}
	return pairKey{a, b}
}

// wlKey is one side of one edge cluster: the unit of WL-1 color splitting.
// Side 0 is the cluster's Src endpoint, side 1 its Dst endpoint; undirected
// same-label clusters use side 0 only.
type wlKey struct {
	key  ccsr.Key
	side uint8
}

// sideLabel returns the vertex label living on the key's side.
func (w wlKey) sideLabel() graph.Label {
	if w.side == 0 {
		return w.key.Src
	}
	return w.key.Dst
}

// wlEntry tracks, for one (cluster, side), each vertex's count of incident
// cluster edges plus the log-bucketed histogram of those counts. Vertices
// with count zero are untracked (WL-1 probes always demand count >= 1).
type wlEntry struct {
	counts map[graph.VertexID]uint32
	h      hist
}

// Signature is the incrementally-maintained admission summary of one
// store. All counts are exact for the store state they were built from /
// maintained against; Check's conservatism lives entirely in the
// log-bucketed histograms and in cross-shard union sums.
//
// Concurrency: Batch takes the write lock for a whole mutation batch, so
// Check (read lock, per signature) only ever observes committed batch
// boundaries — the same states the snapshot swap publishes.
type Signature struct {
	mu       sync.RWMutex
	directed bool

	labels     []graph.Label // labels[v]; vertices are never relabeled or deleted
	deg        []uint32      // deg[v] = incident edges (out+in for directed)
	labelCount map[graph.Label]uint32
	pair       map[pairKey]uint32   // edges per unordered endpoint-label pair
	cluster    map[ccsr.Key]uint32  // edges per exact cluster
	degHist    map[graph.Label]*hist
	wl         map[wlKey]*wlEntry

	self [1]*Signature // lets Check reuse the multi-signature path allocation-free
}

// New returns an empty signature for a graph of the given directedness.
func New(directed bool) *Signature {
	s := &Signature{
		directed:   directed,
		labelCount: make(map[graph.Label]uint32),
		pair:       make(map[pairKey]uint32),
		cluster:    make(map[ccsr.Key]uint32),
		degHist:    make(map[graph.Label]*hist),
		wl:         make(map[wlKey]*wlEntry),
	}
	s.self[0] = s
	return s
}

// Build constructs the signature of an existing store by one pass over its
// vertices and one over its clusters. The error is the store's own
// decompression error, if any.
func Build(st *ccsr.Store) (*Signature, error) {
	s := New(st.Directed())
	b := BatchWriter{s: s}
	n := st.NumVertices()
	for v := 0; v < n; v++ {
		b.AddVertex(st.VertexLabel(graph.VertexID(v)))
	}
	if err := st.EdgesAll(func(src, dst graph.VertexID, el graph.EdgeLabel) {
		b.InsertEdge(src, dst, el)
	}); err != nil {
		return nil, err
	}
	return s, nil
}

// Batch applies a group of mutations atomically with respect to Check:
// the write lock spans the whole batch, so no reader can observe (and
// falsely reject on) a mid-batch state such as a delete that is about to
// be re-inserted.
func (s *Signature) Batch(fn func(b *BatchWriter)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(&BatchWriter{s: s})
}

// BatchWriter applies individual mutations inside a Batch. Calls must
// mirror, in order, mutations the store has accepted: the store has
// already rejected duplicate edges, missing deletes, and self-loops, so
// every call moves each count by exactly one.
type BatchWriter struct {
	s *Signature
}

// AddVertex appends a vertex with label l; IDs are dense and assigned in
// call order, matching the store's.
func (b *BatchWriter) AddVertex(l graph.Label) {
	s := b.s
	s.labels = append(s.labels, l)
	s.deg = append(s.deg, 0)
	s.labelCount[l]++
	h := s.degHist[l]
	if h == nil {
		h = &hist{}
		s.degHist[l] = h
	}
	h.add(0)
}

// InsertEdge records the edge src->dst (orientation is ignored for
// undirected signatures) with edge label el.
func (b *BatchWriter) InsertEdge(src, dst graph.VertexID, el graph.EdgeLabel) {
	b.apply(src, dst, el, +1)
}

// DeleteEdge removes a previously-recorded edge.
func (b *BatchWriter) DeleteEdge(src, dst graph.VertexID, el graph.EdgeLabel) {
	b.apply(src, dst, el, -1)
}

func (b *BatchWriter) apply(src, dst graph.VertexID, el graph.EdgeLabel, delta int32) {
	s := b.s
	ls, ld := s.labels[src], s.labels[dst]
	k := ccsr.NewKey(ls, ld, el, s.directed)

	bump := func(m map[pairKey]uint32, pk pairKey) {
		m[pk] = uint32(int32(m[pk]) + delta)
		if m[pk] == 0 {
			delete(m, pk)
		}
	}
	bump(s.pair, newPairKey(ls, ld))
	s.cluster[k] = uint32(int32(s.cluster[k]) + delta)
	if s.cluster[k] == 0 {
		delete(s.cluster, k)
	}

	for _, v := range [2]graph.VertexID{src, dst} {
		old := s.deg[v]
		s.deg[v] = uint32(int32(old) + delta)
		s.degHist[s.labels[v]].move(old, s.deg[v])
	}

	// WL-1 sides. Directed: src is on side 0, dst on side 1. Undirected:
	// sides follow the canonicalized key's labels; same-label clusters use
	// a single side.
	b.wlBump(wlKey{k, b.sideOf(k, ls, true)}, src, delta)
	b.wlBump(wlKey{k, b.sideOf(k, ld, false)}, dst, delta)
}

func (b *BatchWriter) sideOf(k ccsr.Key, l graph.Label, isSrc bool) uint8 {
	if b.s.directed {
		if isSrc {
			return 0
		}
		return 1
	}
	if k.Src == k.Dst || l == k.Src {
		return 0
	}
	return 1
}

func (b *BatchWriter) wlBump(wk wlKey, v graph.VertexID, delta int32) {
	s := b.s
	e := s.wl[wk]
	if e == nil {
		e = &wlEntry{counts: make(map[graph.VertexID]uint32)}
		s.wl[wk] = e
	}
	old := e.counts[v]
	nv := uint32(int32(old) + delta)
	switch {
	case old == 0:
		e.counts[v] = nv
		e.h.add(nv)
	case nv == 0:
		delete(e.counts, v)
		e.h.remove(old)
		if len(e.counts) == 0 {
			delete(s.wl, wk) // a rebuild would not materialize an empty entry
		}
	default:
		e.counts[v] = nv
		e.h.move(old, nv)
	}
}

// NumVertices returns the number of vertices the signature has seen.
func (s *Signature) NumVertices() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.labels)
}

// Check runs the cascade for pattern p under the given matching variant
// against this signature alone.
//
//csce:hotpath
func (s *Signature) Check(p *graph.Graph, variant graph.Variant) Decision {
	return CheckMany(s.self[:], p, variant)
}

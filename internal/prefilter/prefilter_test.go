package prefilter

import (
	"fmt"
	"math/rand"
	"testing"

	"csce/internal/ccsr"
	"csce/internal/core"
	"csce/internal/dataset"
	"csce/internal/graph"
)

// buildGraph assembles a small hand-written graph: labels by letter,
// edges as (src, dst, edgeLabel) triples over the vertex order given.
func buildGraph(t *testing.T, directed bool, labels []graph.Label, edges [][3]uint32) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(directed)
	for _, l := range labels {
		b.AddVertex(l)
	}
	for _, e := range edges {
		b.AddEdge(graph.VertexID(e[0]), graph.VertexID(e[1]), graph.EdgeLabel(e[2]))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return g
}

func sigOf(t *testing.T, g *graph.Graph) *Signature {
	t.Helper()
	s, err := Build(ccsr.Build(g))
	if err != nil {
		t.Fatalf("Build signature: %v", err)
	}
	return s
}

const (
	lA graph.Label = iota
	lB
	lC
	lD
)

// TestFilterSpecificRejects drives one pattern through each filter of the
// cascade and asserts the rejecting filter, the Checked depth, and that a
// reason renders.
func TestFilterSpecificRejects(t *testing.T) {
	// Data: two A vertices, each with two B neighbors (el 0) and two C
	// neighbors (el 0). Degrees: A=4, B=1, C=1.
	data := buildGraph(t, false,
		[]graph.Label{lA, lA, lB, lB, lB, lB, lC, lC, lC, lC},
		[][3]uint32{{0, 2, 0}, {0, 3, 0}, {0, 6, 0}, {0, 7, 0}, {1, 4, 0}, {1, 5, 0}, {1, 8, 0}, {1, 9, 0}},
	)
	sig := sigOf(t, data)

	cases := []struct {
		name    string
		labels  []graph.Label
		edges   [][3]uint32
		variant graph.Variant
		filter  Filter
		checked uint8
	}{
		{"admit", []graph.Label{lA, lB}, [][3]uint32{{0, 1, 0}}, graph.EdgeInduced, "", 4},
		{"admit-hom-skips-wl", []graph.Label{lA, lB}, [][3]uint32{{0, 1, 0}}, graph.Homomorphic, "", 3},
		// B and C are never adjacent.
		{"nbr-label", []graph.Label{lB, lC}, [][3]uint32{{0, 1, 0}}, graph.EdgeInduced, FilterNbrLabel, 1},
		// A and B are adjacent, but never via edge label 1.
		{"label-pair-el", []graph.Label{lA, lB}, [][3]uint32{{0, 1, 1}}, graph.EdgeInduced, FilterLabelPair, 2},
		// Five A-B pattern edges vs four A-B data edges (injective count).
		{"label-pair-count", []graph.Label{lA, lB, lB, lB, lB, lB},
			[][3]uint32{{0, 1, 0}, {0, 2, 0}, {0, 3, 0}, {0, 4, 0}, {0, 5, 0}}, graph.EdgeInduced, FilterLabelPair, 2},
		// Label D does not exist (single-vertex pattern: only the degree
		// filter's frequency case can see it).
		{"degree-missing-label", []graph.Label{lD}, nil, graph.EdgeInduced, FilterDegree, 3},
		// Three A vertices demanded, two exist.
		{"degree-frequency", []graph.Label{lA, lA, lA, lB}, [][3]uint32{{0, 3, 0}, {1, 3, 0}, {2, 3, 0}},
			graph.EdgeInduced, FilterDegree, 3},
		// One A with two B and three C neighbors: degree 5 needed, max is 4
		// (bucket(5)=3 > bucket(4)=3 — equal; use 8 edges to clear the log
		// bucket: degree 8 needed, bucket 4, vs data bucket 3).
		{"degree-too-high", []graph.Label{lA, lB, lB, lB, lB, lC, lC, lC, lC},
			[][3]uint32{{0, 1, 0}, {0, 2, 0}, {0, 3, 0}, {0, 4, 0}, {0, 5, 0}, {0, 6, 0}, {0, 7, 0}, {0, 8, 0}},
			graph.EdgeInduced, FilterDegree, 3},
		// One A with four B neighbors: total degree 4 exists (bucket-wise),
		// the (A,B) cluster has 4 edges, but no single A has four B
		// neighbors (per-vertex cluster counts are 2, bucket 2; needed 4,
		// bucket 3) — only WL-1 sees the split.
		{"wl1", []graph.Label{lA, lB, lB, lB, lB},
			[][3]uint32{{0, 1, 0}, {0, 2, 0}, {0, 3, 0}, {0, 4, 0}}, graph.EdgeInduced, FilterWL1, 4},
		// The same pattern is homomorphically fine (all B's may collapse).
		{"wl1-hom-admits", []graph.Label{lA, lB, lB, lB, lB},
			[][3]uint32{{0, 1, 0}, {0, 2, 0}, {0, 3, 0}, {0, 4, 0}}, graph.Homomorphic, "", 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := buildGraph(t, false, tc.labels, tc.edges)
			d := sig.Check(p, tc.variant)
			if d.Admit != (tc.filter == "") || d.Filter != tc.filter {
				t.Fatalf("Check = %+v, want filter %q", d, tc.filter)
			}
			if d.Checked != tc.checked {
				t.Errorf("Checked = %d, want %d", d.Checked, tc.checked)
			}
			if !d.Admit {
				if r := d.Reason(nil); r == "" || r == "admitted" {
					t.Errorf("Reason() = %q for reject", r)
				}
				// Cross-check against the executor: a reject must mean zero
				// embeddings.
				cnt, err := core.FromStore(ccsr.Build(data)).Count(p, tc.variant)
				if err != nil {
					t.Fatalf("Count: %v", err)
				}
				if cnt != 0 {
					t.Fatalf("false reject: filter %s but %d embeddings", d.Filter, cnt)
				}
			}
		})
	}
}

// TestDirectedSides proves direction matters: A->B existing does not admit
// a B->A pattern edge, and in/out WL sides are split.
func TestDirectedSides(t *testing.T) {
	data := buildGraph(t, true,
		[]graph.Label{lA, lB, lB},
		[][3]uint32{{0, 1, 0}, {0, 2, 0}},
	)
	sig := sigOf(t, data)

	rev := buildGraph(t, true, []graph.Label{lB, lA}, [][3]uint32{{0, 1, 0}})
	if d := sig.Check(rev, graph.EdgeInduced); d.Admit || d.Filter != FilterLabelPair {
		t.Fatalf("B->A should be rejected by label-pair, got %+v", d)
	}
	fwd := buildGraph(t, true, []graph.Label{lA, lB}, [][3]uint32{{0, 1, 0}})
	if d := sig.Check(fwd, graph.EdgeInduced); !d.Admit {
		t.Fatalf("A->B should admit, got %+v (%s)", d, d.Reason(nil))
	}
	// A vertex with two incoming A-edges: no B has in-degree 2 in cluster.
	twoIn := buildGraph(t, true, []graph.Label{lB, lA, lA}, [][3]uint32{{1, 0, 0}, {2, 0, 0}})
	d := sig.Check(twoIn, graph.EdgeInduced)
	if d.Admit {
		t.Fatalf("two A parents of one B should be rejected, got admit")
	}
}

// TestSoundnessRandom is the never-wrong property in miniature: across
// random data graphs, sampled real patterns, and label-mangled impossible
// patterns, a Reject always coincides with zero executor embeddings.
func TestSoundnessRandom(t *testing.T) {
	specs := []dataset.Spec{
		{Name: "ppi", Kind: dataset.PPI, Vertices: 120, TargetEdges: 420, VertexLabels: 4, EdgeLabels: 2, Seed: 7},
		{Name: "road", Kind: dataset.Road, Vertices: 100, TargetEdges: 240, VertexLabels: 3, Seed: 8},
		{Name: "directed", Directed: true, Vertices: 110, TargetEdges: 400, VertexLabels: 4, EdgeLabels: 2, Seed: 9},
	}
	for _, spec := range specs {
		t.Run(spec.Name, func(t *testing.T) {
			g := spec.Generate()
			st := ccsr.Build(g)
			sig, err := Build(st)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			eng := core.FromStore(st)
			rng := rand.New(rand.NewSource(spec.Seed * 31))
			rejects := 0
			for i := 0; i < 40; i++ {
				size := 3 + rng.Intn(3)
				p, err := dataset.SamplePattern(g, size, i%2 == 0, rng)
				if err != nil {
					continue
				}
				if i%2 == 1 {
					p = mangleLabels(t, p, rng)
				}
				for _, variant := range []graph.Variant{graph.EdgeInduced, graph.VertexInduced, graph.Homomorphic} {
					d := sig.Check(p, variant)
					cnt, err := eng.Count(p, variant)
					if err != nil {
						t.Fatalf("Count: %v", err)
					}
					if !d.Admit {
						rejects++
						if cnt != 0 {
							t.Fatalf("false reject by %s (%s): %d embeddings", d.Filter, d.Reason(nil), cnt)
						}
					}
				}
			}
			t.Logf("%s: %d rejects across mangled/sampled patterns", spec.Name, rejects)
		})
	}
}

// mangleLabels shifts every vertex label by a random offset, usually
// producing a label-impossible pattern (and never an unsound one — the
// check is validated against the executor either way).
func mangleLabels(t *testing.T, p *graph.Graph, rng *rand.Rand) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(p.Directed())
	shift := graph.Label(1 + rng.Intn(5))
	for v := 0; v < p.NumVertices(); v++ {
		b.AddVertex(p.Label(graph.VertexID(v)) + shift)
	}
	p.Edges(func(v, w graph.VertexID, el graph.EdgeLabel) {
		b.AddEdge(v, w, el)
	})
	g, err := b.Build()
	if err != nil {
		t.Fatalf("mangle: %v", err)
	}
	return g
}

// TestIncrementalMatchesRebuild drives the same random mutation stream
// into a store and a signature, and after every batch requires the
// incrementally-maintained signature to be byte-identical to one rebuilt
// from scratch — the exactness invariant recovery relies on.
func TestIncrementalMatchesRebuild(t *testing.T) {
	for _, directed := range []bool{false, true} {
		t.Run(fmt.Sprintf("directed=%v", directed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			st := ccsr.Build(buildGraph(t, directed,
				[]graph.Label{lA, lB, lC},
				[][3]uint32{{0, 1, 0}, {1, 2, 1}},
			))
			sig, err := Build(st)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			type edge struct {
				src, dst graph.VertexID
				el       graph.EdgeLabel
			}
			var live []edge
			st.EdgesAll(func(src, dst graph.VertexID, el graph.EdgeLabel) {
				live = append(live, edge{src, dst, el})
			})
			for batch := 0; batch < 25; batch++ {
				sig.Batch(func(bw *BatchWriter) {
					for op := 0; op < 1+rng.Intn(6); op++ {
						switch {
						case rng.Intn(4) == 0:
							l := graph.Label(rng.Intn(4))
							st.AddVertex(l)
							bw.AddVertex(l)
						case len(live) > 0 && rng.Intn(3) == 0:
							i := rng.Intn(len(live))
							e := live[i]
							if err := st.DeleteEdge(e.src, e.dst, e.el); err != nil {
								t.Fatalf("DeleteEdge: %v", err)
							}
							bw.DeleteEdge(e.src, e.dst, e.el)
							live[i] = live[len(live)-1]
							live = live[:len(live)-1]
						default:
							n := uint32(st.NumVertices())
							src := graph.VertexID(rng.Intn(int(n)))
							dst := graph.VertexID(rng.Intn(int(n)))
							el := graph.EdgeLabel(rng.Intn(3))
							if err := st.InsertEdge(src, dst, el); err != nil {
								continue // duplicate or self-loop: store rejected it
							}
							bw.InsertEdge(src, dst, el)
							live = append(live, edge{src, dst, el})
						}
					}
				})
				want, err := Build(st)
				if err != nil {
					t.Fatalf("rebuild: %v", err)
				}
				if got, wantS := sig.Dump(), want.Dump(); got != wantS {
					t.Fatalf("batch %d: incremental signature diverged from rebuild:\n--- incremental\n%s\n--- rebuild\n%s", batch, got, wantS)
				}
			}
		})
	}
}

// TestHistogramUpperBound proves countAtLeast never undercounts.
func TestHistogramUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var h hist
	var vals []uint32
	for i := 0; i < 500; i++ {
		v := uint32(rng.Intn(1 << uint(rng.Intn(16))))
		h.add(v)
		vals = append(vals, v)
	}
	for k := uint32(0); k < 70; k++ {
		truth := uint64(0)
		for _, v := range vals {
			if v >= k {
				truth++
			}
		}
		if got := h.countAtLeast(k); got < truth {
			t.Fatalf("countAtLeast(%d) = %d < true %d", k, got, truth)
		}
	}
}

// TestCheckManyUnion checks the sharded union semantics: counts sum across
// signatures, existence is any-signature existence.
func TestCheckManyUnion(t *testing.T) {
	left := sigOf(t, buildGraph(t, false, []graph.Label{lA, lB}, [][3]uint32{{0, 1, 0}}))
	right := sigOf(t, buildGraph(t, false, []graph.Label{lA, lB, lB}, [][3]uint32{{0, 1, 0}, {0, 2, 0}}))

	// Three A-B edges exist only in the union.
	p := buildGraph(t, false, []graph.Label{lA, lB, lA, lB, lB},
		[][3]uint32{{0, 1, 0}, {2, 3, 0}, {2, 4, 0}})
	if d := CheckMany([]*Signature{left, right}, p, graph.EdgeInduced); !d.Admit {
		t.Fatalf("union should admit, got %+v (%s)", d, d.Reason(nil))
	}
	if d := left.Check(p, graph.EdgeInduced); d.Admit {
		t.Fatal("left alone should reject")
	}
	// Nothing supplies an A-C edge anywhere.
	pc := buildGraph(t, false, []graph.Label{lA, lC}, [][3]uint32{{0, 1, 0}})
	if d := CheckMany([]*Signature{left, right}, pc, graph.EdgeInduced); d.Admit || d.Filter != FilterNbrLabel {
		t.Fatalf("union should reject A-C via nbr-label, got %+v", d)
	}
}

// TestReasonRendering exercises both the numeric and the named renderings.
func TestReasonRendering(t *testing.T) {
	names := graph.NewLabelTable()
	author := names.Vertex("author")
	paper := names.Vertex("paper")
	cites := names.Edge("cites")
	_ = cites
	d := Decision{Filter: FilterNbrLabel, SrcLabel: author, DstLabel: paper, Needed: 1}
	if got := d.Reason(names); got != "no edge between labels author and paper exists in the graph" {
		t.Errorf("named reason = %q", got)
	}
	if got := d.Reason(nil); got == "" {
		t.Error("numeric reason empty")
	}
	if got := (Decision{Admit: true}).Reason(nil); got != "admitted" {
		t.Errorf("admit reason = %q", got)
	}
}

// TestCheckAllocFree keeps the admission check off the allocator: after
// scratch warm-up, Check must not allocate. (The race detector randomly
// drops sync.Pool items by design, so the assertion is skipped there.)
func TestCheckAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector")
	}
	data := buildGraph(t, false,
		[]graph.Label{lA, lB, lB, lC},
		[][3]uint32{{0, 1, 0}, {0, 2, 0}, {0, 3, 1}},
	)
	sig := sigOf(t, data)
	p := buildGraph(t, false, []graph.Label{lA, lB, lC}, [][3]uint32{{0, 1, 0}, {0, 2, 1}})
	for i := 0; i < 16; i++ {
		sig.Check(p, graph.EdgeInduced) // warm the scratch pool
	}
	if n := testing.AllocsPerRun(200, func() {
		sig.Check(p, graph.EdgeInduced)
	}); n > 0 {
		t.Errorf("Check allocates %.1f times per run, want 0", n)
	}
}

//go:build !race

package prefilter

// raceEnabled reports whether the race detector built this test binary;
// the allocation assertion is meaningless there (sync.Pool intentionally
// drops items at random under -race).
const raceEnabled = false

//go:build race

package prefilter

// raceEnabled reports whether the race detector built this test binary.
const raceEnabled = true

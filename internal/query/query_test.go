package query

import (
	"math/rand"
	"strings"
	"testing"

	"csce/internal/core"
	"csce/internal/graph"
)

func labeledGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.ParseString(`
t directed
v 0 Person
v 1 Person
v 2 Person
v 3 Post
e 0 1 knows
e 1 2 knows
e 0 2 knows
e 0 3 wrote
e 1 3 likes
`)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestParseTrianglePath(t *testing.T) {
	g := labeledGraph(t)
	q, err := Parse("MATCH (a:Person)-[:knows]->(b:Person)-[:knows]->(c:Person), (a)-[:knows]->(c)",
		g.Names, true)
	if err != nil {
		t.Fatal(err)
	}
	if q.Pattern.NumVertices() != 3 || q.Pattern.NumEdges() != 3 {
		t.Fatalf("pattern shape %d/%d, want 3/3", q.Pattern.NumVertices(), q.Pattern.NumEdges())
	}
	if len(q.Vars) != 3 || q.Vars[0] != "a" || q.Vars[1] != "b" || q.Vars[2] != "c" {
		t.Fatalf("vars = %v", q.Vars)
	}
	// End to end: exactly one knows-triangle (0,1,2).
	engine := core.NewEngine(g)
	n, err := engine.Count(q.Pattern, graph.Homomorphic)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("triangle query matched %d times, want 1", n)
	}
}

func TestParseReverseAndShorthand(t *testing.T) {
	g := labeledGraph(t)
	q, err := Parse("MATCH (p:Post)<-[:wrote]-(a:Person)", g.Names, true)
	if err != nil {
		t.Fatal(err)
	}
	// Edge must point Person -> Post.
	if q.Pattern.OutDegree(1) != 1 || q.Pattern.InDegree(0) != 1 {
		t.Fatalf("reverse arrow mis-parsed")
	}
	engine := core.NewEngine(g)
	n, err := engine.Count(q.Pattern, graph.Homomorphic)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("wrote query matched %d, want 1", n)
	}

	// Shorthand --> with no label matches only unlabeled edges: none here.
	q2, err := Parse("MATCH (a:Person)-->(b:Person)", g.Names, true)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := engine.Count(q2.Pattern, graph.Homomorphic)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 0 {
		t.Fatalf("unlabeled shorthand matched %d labeled edges, want 0", n2)
	}
}

func TestParseUndirected(t *testing.T) {
	names := graph.NewLabelTable()
	q, err := Parse("MATCH ()--()--()", names, false)
	if err != nil {
		t.Fatal(err)
	}
	if q.Pattern.Directed() || q.Pattern.NumVertices() != 3 || q.Pattern.NumEdges() != 2 {
		t.Fatalf("undirected path mis-parsed: %d/%d", q.Pattern.NumVertices(), q.Pattern.NumEdges())
	}
	if q.Vars[0] != "_1" || q.Vars[2] != "_3" {
		t.Fatalf("anonymous vars = %v", q.Vars)
	}
}

func TestParseSharedVariables(t *testing.T) {
	names := graph.NewLabelTable()
	q, err := Parse("MATCH (a)--(b), (b)--(c), (c)--(a)", names, false)
	if err != nil {
		t.Fatal(err)
	}
	if q.Pattern.NumVertices() != 3 || q.Pattern.NumEdges() != 3 {
		t.Fatalf("triangle via shared vars mis-parsed: %d/%d",
			q.Pattern.NumVertices(), q.Pattern.NumEdges())
	}
}

func TestParseErrors(t *testing.T) {
	g := labeledGraph(t)
	cases := map[string]string{
		"missing MATCH":       "(a:Person)-->(b:Person)",
		"unlabeled node":      "MATCH (a)-->(b:Person)",
		"double arrow":        "MATCH (a:Person)<-[:x]->(b:Person)",
		"unclosed node":       "MATCH (a:Person",
		"unclosed bracket":    "MATCH (a:Person)-[:knows->(b:Person)",
		"trailing junk":       "MATCH (a:Person)-[:knows]->(b:Person) RETURN a",
		"label redeclaration": "MATCH (a:Person)-[:knows]->(b:Person), (a:Post)-[:likes]->(b)",
		"empty label":         "MATCH (a:)-->(b:Person)",
		"undirected edge":     "MATCH (a:Person)-[:knows]-(b:Person)",
		"self loop":           "MATCH (a:Person)-[:knows]->(a)",
	}
	for name, qs := range cases {
		if _, err := Parse(qs, g.Names, true); err == nil {
			t.Errorf("%s: expected error for %q", name, qs)
		}
	}
	// Directed arrow against an undirected graph.
	if _, err := Parse("MATCH (a)-->(b)", graph.NewLabelTable(), false); err == nil {
		t.Error("directed arrow must fail on an undirected graph")
	}
}

func TestParseKeywordCaseInsensitive(t *testing.T) {
	names := graph.NewLabelTable()
	if _, err := Parse("match (a)--(b)", names, false); err != nil {
		t.Fatalf("lowercase match: %v", err)
	}
}

func TestQueryEndToEndVariableBinding(t *testing.T) {
	g := labeledGraph(t)
	engine := core.NewEngine(g)
	q, err := Parse("MATCH (a:Person)-[:wrote]->(p:Post), (b:Person)-[:likes]->(p)", g.Names, true)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	_, err = engine.Match(q.Pattern, core.MatchOptions{
		Variant: graph.EdgeInduced,
		OnEmbedding: func(m []graph.VertexID) bool {
			var sb strings.Builder
			for i, name := range q.Vars {
				if i > 0 {
					sb.WriteByte(' ')
				}
				sb.WriteString(name)
				sb.WriteByte('=')
				sb.WriteByte('v')
				sb.WriteByte('0' + byte(m[i]))
			}
			got = append(got, sb.String())
			return true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "a=v0 p=v3 b=v1" {
		t.Fatalf("bindings = %v", got)
	}
}

// TestParseNeverPanics feeds the MATCH parser arbitrary and mutated query
// strings: it must error, not panic.
func TestParseNeverPanics(t *testing.T) {
	names := graph.NewLabelTable()
	names.Vertex("A")
	valid := "MATCH (a:A)-[:r]->(b:A), (b)-[:r]->(a)"
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		var input string
		if i%2 == 0 {
			b := []byte(valid)
			for j := 0; j < 1+rng.Intn(5); j++ {
				b[rng.Intn(len(b))] = byte(32 + rng.Intn(95))
			}
			input = string(b[:rng.Intn(len(b)+1)])
		} else {
			b := make([]byte, rng.Intn(120))
			for j := range b {
				b[j] = byte(32 + rng.Intn(95))
			}
			input = string(b)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("input %q panicked: %v", input, r)
				}
			}()
			_, _ = Parse(input, names, true)
		}()
	}
}

// Package query parses a small Cypher-inspired pattern language into
// pattern graphs, the query front-end style of the graph databases the
// paper positions CSCE against (M-Cypher, Graphflow, Kùzu):
//
//	MATCH (a:Person)-[:knows]->(b:Person), (b)-[:knows]->(c:Person), (a)--(c)
//
// Nodes are written (var:Label) — the variable may be omitted for
// anonymous nodes, and the label may be omitted only when the data graph
// is unlabeled. Edges are -[:label]-> (directed), <-[:label]- (reverse),
// or -[:label]- (undirected), with the bracket part optional: -->, <--,
// and -- denote unlabeled edges. Labels are interned through the data
// graph's LabelTable so names align with the data.
package query

import (
	"fmt"
	"strings"
	"unicode"

	"csce/internal/graph"
)

// Query is a parsed pattern.
type Query struct {
	// Pattern is the pattern graph, one vertex per distinct variable (or
	// anonymous node) in order of first appearance.
	Pattern *graph.Graph
	// Vars names each pattern vertex: the variable written in the query,
	// or "_N" for anonymous nodes.
	Vars []string
}

// Parse compiles a MATCH query against a data graph's label table and
// directedness. Every node of a labeled graph must carry a label; edges
// follow the data graph's directedness (undirected graphs reject directed
// arrows).
func Parse(q string, names *graph.LabelTable, directed bool) (*Query, error) {
	p := &parser{
		input:    q,
		names:    names,
		directed: directed,
		varIndex: map[string]graph.VertexID{},
		builder:  graph.NewBuilder(directed),
	}
	p.builder.SetNames(names)
	if err := p.parse(); err != nil {
		return nil, err
	}
	pattern, err := p.builder.Build()
	if err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}
	return &Query{Pattern: pattern, Vars: p.vars}, nil
}

type parser struct {
	input    string
	pos      int
	names    *graph.LabelTable
	directed bool

	builder  *graph.Builder
	varIndex map[string]graph.VertexID
	vars     []string
	labels   []graph.Label // mirrors builder vertex labels, for redeclaration checks
	anon     int
}

func (p *parser) parse() error {
	p.skipSpace()
	if !p.eatKeyword("MATCH") {
		return p.errorf("expected MATCH")
	}
	for {
		if err := p.parsePath(); err != nil {
			return err
		}
		p.skipSpace()
		if !p.eat(',') {
			break
		}
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return p.errorf("trailing input %q", p.input[p.pos:])
	}
	return nil
}

// parsePath parses node (edge node)*.
func (p *parser) parsePath() error {
	left, err := p.parseNode()
	if err != nil {
		return err
	}
	for {
		p.skipSpace()
		if p.pos >= len(p.input) || (p.peek() != '-' && p.peek() != '<') {
			return nil
		}
		dir, label, err := p.parseEdge()
		if err != nil {
			return err
		}
		right, err := p.parseNode()
		if err != nil {
			return err
		}
		switch dir {
		case dirForward:
			if !p.directed {
				return p.errorf("directed edge in a query against an undirected graph")
			}
			p.builder.AddEdge(left, right, label)
		case dirBackward:
			if !p.directed {
				return p.errorf("directed edge in a query against an undirected graph")
			}
			p.builder.AddEdge(right, left, label)
		default:
			if p.directed {
				return p.errorf("undirected edge in a query against a directed graph")
			}
			p.builder.AddEdge(left, right, label)
		}
		left = right
	}
}

type edgeDir int

const (
	dirForward edgeDir = iota
	dirBackward
	dirUndirected
)

// parseEdge parses -[:label]->, <-[:label]-, -->, <--, -[:l]-, or --.
func (p *parser) parseEdge() (edgeDir, graph.EdgeLabel, error) {
	p.skipSpace()
	backward := false
	if p.eat('<') {
		backward = true
	}
	if !p.eat('-') {
		return 0, 0, p.errorf("expected edge")
	}
	var label graph.EdgeLabel
	if p.eat('[') {
		if p.eat(':') {
			name := p.ident()
			if name == "" {
				return 0, 0, p.errorf("expected edge label after ':'")
			}
			label = p.names.Edge(name)
		}
		if !p.eat(']') {
			return 0, 0, p.errorf("expected ']'")
		}
	}
	if !p.eat('-') {
		return 0, 0, p.errorf("expected '-' to close edge")
	}
	forward := p.eat('>')
	switch {
	case backward && forward:
		return 0, 0, p.errorf("edge cannot point both ways")
	case backward:
		return dirBackward, label, nil
	case forward:
		return dirForward, label, nil
	default:
		return dirUndirected, label, nil
	}
}

// parseNode parses (var:Label), (var), (:Label), or ().
func (p *parser) parseNode() (graph.VertexID, error) {
	p.skipSpace()
	if !p.eat('(') {
		return 0, p.errorf("expected '('")
	}
	name := p.ident()
	var labelName string
	if p.eat(':') {
		labelName = p.ident()
		if labelName == "" {
			return 0, p.errorf("expected label after ':'")
		}
	}
	if !p.eat(')') {
		return 0, p.errorf("expected ')'")
	}

	if name == "" {
		p.anon++
		name = fmt.Sprintf("_%d", p.anon)
	}
	if v, ok := p.varIndex[name]; ok {
		if labelName != "" && p.names.Vertex(labelName) != p.labelOf(v) {
			return 0, p.errorf("variable %s redeclared with a different label", name)
		}
		return v, nil
	}
	labeled := p.names.NumVertexLabels() > 0
	if labelName == "" && labeled {
		return 0, p.errorf("node %s needs a label (the data graph is labeled)", name)
	}
	var l graph.Label
	if labelName != "" {
		l = p.names.Vertex(labelName)
	}
	v := p.builder.AddVertex(l)
	p.varIndex[name] = v
	p.vars = append(p.vars, name)
	p.labels = append(p.labels, l)
	return v, nil
}

// labelOf retrieves the label already assigned to pattern vertex v.
func (p *parser) labelOf(v graph.VertexID) graph.Label { return p.labels[v] }

func (p *parser) skipSpace() {
	for p.pos < len(p.input) && unicode.IsSpace(rune(p.input[p.pos])) {
		p.pos++
	}
}

func (p *parser) peek() byte { return p.input[p.pos] }

func (p *parser) eat(c byte) bool {
	p.skipSpace()
	if p.pos < len(p.input) && p.input[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *parser) eatKeyword(kw string) bool {
	p.skipSpace()
	if strings.HasPrefix(strings.ToUpper(p.input[p.pos:]), kw) {
		p.pos += len(kw)
		return true
	}
	return false
}

func (p *parser) ident() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.input) {
		c := rune(p.input[p.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
			p.pos++
		} else {
			break
		}
	}
	return p.input[start:p.pos]
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("query: position %d: %s", p.pos, fmt.Sprintf(format, args...))
}

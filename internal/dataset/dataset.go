// Package dataset generates the synthetic stand-ins for the paper's data
// graphs (Table IV). The real graphs (SNAP, VEQ and RapidMatch artifacts)
// are not redistributable here, so each is replaced by a seeded generator
// that reproduces the properties the matching algorithms are sensitive to:
// degree distribution (power law for social/citation networks, near-
// constant for the road network, clustered power law for PPI networks),
// vertex label count, directedness, and — scaled down — size. DESIGN.md
// documents the substitution rationale.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"csce/internal/graph"
)

// Kind selects a generator family.
type Kind uint8

const (
	// PowerLaw is a preferential-attachment graph (social/citation shape).
	PowerLaw Kind = iota
	// Road is a perturbed 2D lattice with near-constant low degree.
	Road
	// PPI is preferential attachment with triadic closure, giving the
	// higher clustering of protein-interaction networks.
	PPI
	// Community is a planted-partition graph with known ground-truth
	// communities (the EMAIL-EU case-study shape).
	Community
)

// Spec describes one synthetic dataset.
type Spec struct {
	Name         string
	Kind         Kind
	Directed     bool
	Vertices     int
	TargetEdges  int
	VertexLabels int // 0 = unlabeled
	EdgeLabels   int // 0 = no edge labels
	Seed         int64

	// Community parameters (Kind == Community).
	Communities int
	IntraProb   float64
	InterDegree float64

	// PaperVertices/PaperEdges record the original Table IV scale for the
	// dataset-statistics report.
	PaperVertices int
	PaperEdges    int
}

// Generate builds the dataset deterministically from its seed.
func (s Spec) Generate() *graph.Graph {
	rng := rand.New(rand.NewSource(s.Seed))
	var g *graph.Graph
	switch s.Kind {
	case Road:
		g = genRoad(rng, s)
	case PPI:
		g = genPreferential(rng, s, 0.35)
	case Community:
		g, _ = genCommunity(rng, s)
	default:
		g = genPreferential(rng, s, 0)
	}
	return g
}

// GenerateWithCommunities builds a Community dataset and returns the
// ground-truth community of every vertex.
func (s Spec) GenerateWithCommunities() (*graph.Graph, []int) {
	if s.Kind != Community {
		panic("dataset: GenerateWithCommunities requires Kind == Community")
	}
	rng := rand.New(rand.NewSource(s.Seed))
	return genCommunity(rng, s)
}

// genPreferential grows a preferential-attachment graph; closure > 0 adds
// triadic closure (a fraction of new edges attach to a neighbor of the
// previous target), raising clustering for the PPI shape.
func genPreferential(rng *rand.Rand, s Spec, closure float64) *graph.Graph {
	n := s.Vertices
	m := s.TargetEdges
	if n < 2 {
		panic("dataset: need at least two vertices")
	}
	perVertex := m / n
	if perVertex < 1 {
		perVertex = 1
	}
	b := graph.NewBuilder(s.Directed)
	assignLabels(rng, b, s, n)

	// targets holds one entry per edge endpoint, so sampling from it is
	// degree-proportional (the usual Barabási–Albert trick).
	targets := make([]graph.VertexID, 0, 2*m+2)
	b0, b1 := graph.VertexID(0), graph.VertexID(1)
	addEdge := func(v, w graph.VertexID) {
		if v == w {
			return
		}
		if s.Directed && rng.Intn(2) == 0 {
			v, w = w, v
		}
		b.AddEdge(v, w, edgeLabel(rng, s))
		targets = append(targets, v, w)
	}
	addEdge(b0, b1)
	for v := 2; v < n; v++ {
		vid := graph.VertexID(v)
		var last graph.VertexID
		for e := 0; e < perVertex; e++ {
			var w graph.VertexID
			if e > 0 && closure > 0 && rng.Float64() < closure {
				// Triadic closure: attach near the previous target.
				w = last
				for tries := 0; tries < 3 && w == vid; tries++ {
					w = targets[rng.Intn(len(targets))]
				}
			} else {
				w = targets[rng.Intn(len(targets))]
			}
			if w == vid {
				continue
			}
			last = w
			addEdge(vid, w)
		}
	}
	// Top up to the edge target with degree-proportional endpoints.
	for extra := perVertex * n; extra < m; extra++ {
		v := targets[rng.Intn(len(targets))]
		w := targets[rng.Intn(len(targets))]
		addEdge(v, w)
	}
	return b.MustBuild()
}

// genRoad builds a jittered 2D lattice: average degree just under 3, tiny
// maximum degree, like a road network.
func genRoad(rng *rand.Rand, s Spec) *graph.Graph {
	n := s.Vertices
	side := int(math.Sqrt(float64(n)))
	if side < 2 {
		side = 2
	}
	n = side * side
	b := graph.NewBuilder(s.Directed)
	assignLabels(rng, b, s, n)
	at := func(r, c int) graph.VertexID { return graph.VertexID(r*side + c) }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			// Drop a fraction of grid edges and add occasional diagonals so
			// degrees vary between 1 and ~5 like RoadCA's.
			if c+1 < side && rng.Float64() < 0.75 {
				b.AddEdge(at(r, c), at(r, c+1), edgeLabel(rng, s))
			}
			if r+1 < side && rng.Float64() < 0.75 {
				b.AddEdge(at(r, c), at(r+1, c), edgeLabel(rng, s))
			}
			if r+1 < side && c+1 < side && rng.Float64() < 0.05 {
				b.AddEdge(at(r, c), at(r+1, c+1), edgeLabel(rng, s))
			}
		}
	}
	return b.MustBuild()
}

// genCommunity builds a planted-partition graph: dense intra-community
// blocks plus sparse random inter-community edges. Returns ground truth.
func genCommunity(rng *rand.Rand, s Spec) (*graph.Graph, []int) {
	n := s.Vertices
	k := s.Communities
	if k < 2 {
		k = 2
	}
	membership := make([]int, n)
	for v := range membership {
		membership[v] = v % k
	}
	b := graph.NewBuilder(s.Directed)
	assignLabels(rng, b, s, n)
	byCommunity := make([][]graph.VertexID, k)
	for v := 0; v < n; v++ {
		c := membership[v]
		byCommunity[c] = append(byCommunity[c], graph.VertexID(v))
	}
	for _, members := range byCommunity {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if rng.Float64() < s.IntraProb {
					b.AddEdge(members[i], members[j], edgeLabel(rng, s))
				}
			}
		}
	}
	inter := int(s.InterDegree * float64(n) / 2)
	for e := 0; e < inter; e++ {
		v := graph.VertexID(rng.Intn(n))
		w := graph.VertexID(rng.Intn(n))
		if v != w && membership[v] != membership[w] {
			b.AddEdge(v, w, edgeLabel(rng, s))
		}
	}
	return b.MustBuild(), membership
}

// assignLabels adds n vertices with a skewed (Zipf-like) label assignment,
// matching the uneven label frequencies of the real datasets.
func assignLabels(rng *rand.Rand, b *graph.Builder, s Spec, n int) {
	if s.VertexLabels <= 1 {
		b.AddVertices(n, 0)
		return
	}
	weights := make([]float64, s.VertexLabels)
	total := 0.0
	for i := range weights {
		weights[i] = 1 / float64(i+1)
		total += weights[i]
	}
	for v := 0; v < n; v++ {
		x := rng.Float64() * total
		l := 0
		for x > weights[l] && l < len(weights)-1 {
			x -= weights[l]
			l++
		}
		b.AddVertex(graph.Label(l))
	}
}

func edgeLabel(rng *rand.Rand, s Spec) graph.EdgeLabel {
	if s.EdgeLabels <= 1 {
		return 0
	}
	return graph.EdgeLabel(rng.Intn(s.EdgeLabels))
}

// WithLabels returns a copy of the spec with the vertex label count
// replaced, used by the Fig. 10/11 label sweeps.
func (s Spec) WithLabels(labels int) Spec {
	s.VertexLabels = labels
	s.Name = fmt.Sprintf("%s-%dL", s.Name, labels)
	return s
}

// Catalog returns the Table IV dataset analogues, scaled to laptop size.
// Ordering matches the paper's table.
func Catalog() []Spec {
	return []Spec{
		{Name: "DIP", Kind: PPI, Vertices: 4935, TargetEdges: 21975, Seed: 101,
			PaperVertices: 4935, PaperEdges: 21975},
		{Name: "Yeast", Kind: PPI, Vertices: 3101, TargetEdges: 12519, VertexLabels: 71, Seed: 102,
			PaperVertices: 3101, PaperEdges: 12519},
		{Name: "Human", Kind: PPI, Vertices: 4674, TargetEdges: 86282, VertexLabels: 44, Seed: 103,
			PaperVertices: 4674, PaperEdges: 86282},
		{Name: "HPRD", Kind: PPI, Vertices: 9303, TargetEdges: 34998, VertexLabels: 304, Seed: 104,
			PaperVertices: 9303, PaperEdges: 34998},
		{Name: "RoadCA", Kind: Road, Vertices: 46656, TargetEdges: 65000, Seed: 105,
			PaperVertices: 1965206, PaperEdges: 2766607},
		{Name: "Orkut", Kind: PowerLaw, Vertices: 20000, TargetEdges: 760000, VertexLabels: 50, Seed: 106,
			PaperVertices: 3072441, PaperEdges: 117185083},
		{Name: "Patent", Kind: PowerLaw, Vertices: 37000, TargetEdges: 330000, VertexLabels: 20, Seed: 107,
			PaperVertices: 3774768, PaperEdges: 33037894},
		{Name: "Subcategory", Kind: PowerLaw, Directed: true, Vertices: 27000, TargetEdges: 140000, VertexLabels: 36, Seed: 108,
			PaperVertices: 2745763, PaperEdges: 13965410},
		{Name: "LiveJournal", Kind: PowerLaw, Directed: true, Vertices: 40000, TargetEdges: 347000, Seed: 109,
			PaperVertices: 3997962, PaperEdges: 34681189},
	}
}

// EmailEU returns the case-study dataset: an EMAIL-EU-like communication
// graph with planted departments dense enough to host 8-cliques.
func EmailEU() Spec {
	// IntraProb is set so 20-member departments host a few hundred
	// 8-cliques each (expected count C(20,8) * p^28), the signal the
	// higher-order clustering needs; the paper's real EMAIL-EU departments
	// are similarly clique-rich.
	return Spec{
		Name:        "EMAIL-EU",
		Kind:        Community,
		Vertices:    500,
		Communities: 25,
		IntraProb:   0.8,
		InterDegree: 8,
		Seed:        110,
	}
}

// ByName looks a catalog dataset up by name (EMAIL-EU included).
func ByName(name string) (Spec, bool) {
	for _, s := range append(Catalog(), EmailEU()) {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names lists the catalog dataset names in order.
func Names() []string {
	var out []string
	for _, s := range Catalog() {
		out = append(out, s.Name)
	}
	sort.Strings(out)
	return out
}

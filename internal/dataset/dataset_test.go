package dataset

import (
	"math/rand"
	"testing"

	"csce/internal/graph"
)

func TestCatalogShapes(t *testing.T) {
	for _, spec := range Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			g := spec.Generate()
			if g.Directed() != spec.Directed {
				t.Fatalf("directedness mismatch")
			}
			// Size within 35% of target (generators are stochastic).
			if lo, hi := spec.Vertices*65/100, spec.Vertices*135/100; g.NumVertices() < lo || g.NumVertices() > hi {
				t.Fatalf("vertices = %d, target %d", g.NumVertices(), spec.Vertices)
			}
			if lo, hi := spec.TargetEdges*6/10, spec.TargetEdges*14/10; g.NumEdges() < lo || g.NumEdges() > hi {
				t.Fatalf("edges = %d, target %d", g.NumEdges(), spec.TargetEdges)
			}
			if spec.VertexLabels > 1 {
				got := g.VertexLabelCount()
				if got < spec.VertexLabels/2 || got > spec.VertexLabels {
					t.Fatalf("label count = %d, want about %d", got, spec.VertexLabels)
				}
			} else if g.VertexLabelCount() != 1 {
				t.Fatalf("unlabeled dataset has %d labels", g.VertexLabelCount())
			}
		})
	}
}

func TestGenerationIsDeterministic(t *testing.T) {
	spec, _ := ByName("Yeast")
	a, b := spec.Generate(), spec.Generate()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed must generate identical sizes")
	}
	for v := 0; v < a.NumVertices(); v++ {
		oa, ob := a.Out(graph.VertexID(v)), b.Out(graph.VertexID(v))
		if len(oa) != len(ob) {
			t.Fatalf("vertex %d adjacency differs", v)
		}
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("vertex %d adjacency differs at %d", v, i)
			}
		}
	}
}

func TestPowerLawSkew(t *testing.T) {
	spec, _ := ByName("Patent")
	g := spec.Generate()
	s := graph.ComputeStats("Patent", g)
	if s.MaxOutDegree < int(8*s.AvgDegree) {
		t.Fatalf("power-law graph must have a heavy tail: max %d avg %.1f",
			s.MaxOutDegree, s.AvgDegree)
	}
}

func TestRoadDegreesAreFlat(t *testing.T) {
	spec, _ := ByName("RoadCA")
	g := spec.Generate()
	s := graph.ComputeStats("RoadCA", g)
	if s.MaxOutDegree > 8 {
		t.Fatalf("road network max degree %d is too high", s.MaxOutDegree)
	}
	if s.AvgDegree < 1.5 || s.AvgDegree > 4 {
		t.Fatalf("road network avg degree %.2f out of range", s.AvgDegree)
	}
}

func TestCommunityGroundTruth(t *testing.T) {
	spec := EmailEU()
	g, membership := spec.GenerateWithCommunities()
	if len(membership) != g.NumVertices() {
		t.Fatal("membership length mismatch")
	}
	// Intra-community edges must dominate.
	intra, inter := 0, 0
	g.Edges(func(a, b graph.VertexID, _ graph.EdgeLabel) {
		if membership[a] == membership[b] {
			intra++
		} else {
			inter++
		}
	})
	if intra <= inter {
		t.Fatalf("planted partition too weak: intra=%d inter=%d", intra, inter)
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("DIP"); !ok {
		t.Fatal("DIP missing")
	}
	if _, ok := ByName("EMAIL-EU"); !ok {
		t.Fatal("EMAIL-EU missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown dataset resolved")
	}
	if len(Names()) != len(Catalog()) {
		t.Fatal("Names incomplete")
	}
}

func TestWithLabels(t *testing.T) {
	spec, _ := ByName("Patent")
	relabeled := spec.WithLabels(200)
	if relabeled.VertexLabels != 200 {
		t.Fatal("label override lost")
	}
	g := relabeled.Generate()
	if got := g.VertexLabelCount(); got < 100 {
		t.Fatalf("relabeled graph has %d labels, want near 200", got)
	}
}

func TestSamplePatternProperties(t *testing.T) {
	spec, _ := ByName("Yeast")
	g := spec.Generate()
	rng := rand.New(rand.NewSource(42))
	for _, size := range []int{4, 8, 16} {
		for _, dense := range []bool{false, true} {
			p, err := SamplePattern(g, size, dense, rng)
			if err != nil {
				t.Fatalf("size %d dense=%v: %v", size, dense, err)
			}
			if p.NumVertices() != size {
				t.Fatalf("pattern size %d, want %d", p.NumVertices(), size)
			}
			if !graph.IsConnected(p) {
				t.Fatal("pattern must be connected")
			}
			avg := graph.AvgDegreeOf(p)
			if dense && avg <= 2 {
				t.Fatalf("dense pattern has avg degree %.2f", avg)
			}
			if !dense && avg > 2 {
				t.Fatalf("sparse pattern has avg degree %.2f", avg)
			}
			// Sampled patterns are subgraphs: every pattern label exists in g.
			for v := 0; v < p.NumVertices(); v++ {
				if g.LabelFrequency(p.Label(graph.VertexID(v))) == 0 {
					t.Fatal("pattern label not present in data graph")
				}
			}
		}
	}
}

func TestSamplePatternsDeterministic(t *testing.T) {
	spec, _ := ByName("Yeast")
	g := spec.Generate()
	cfg := PatternConfig{Size: 8, Dense: true, Count: 3, Seed: 7}
	a, err := SamplePatterns(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SamplePatterns(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].NumEdges() != b[i].NumEdges() {
			t.Fatal("same seed must sample identical patterns")
		}
	}
	if cfg.Name() != "D8" {
		t.Fatalf("config name = %q", cfg.Name())
	}
	if (PatternConfig{Size: 16}).Name() != "S16" {
		t.Fatal("sparse naming broken")
	}
}

func TestSamplePatternErrors(t *testing.T) {
	small := graph.Clique(3, 0)
	rng := rand.New(rand.NewSource(1))
	if _, err := SamplePattern(small, 10, false, rng); err == nil {
		t.Fatal("oversized pattern must fail")
	}
	if _, err := SamplePattern(small, 1, false, rng); err == nil {
		t.Fatal("trivial size must fail")
	}
}

func TestCliquePattern(t *testing.T) {
	spec := EmailEU()
	g := spec.Generate()
	p := CliquePattern(g, 8)
	if p.NumVertices() != 8 || p.NumEdges() != 28 {
		t.Fatalf("8-clique shape wrong: %d/%d", p.NumVertices(), p.NumEdges())
	}
	if g.LabelFrequency(p.Label(0)) == 0 {
		t.Fatal("clique label must exist in the data graph")
	}
}

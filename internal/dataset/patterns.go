package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"csce/internal/graph"
)

// Pattern sampling follows the protocol the paper adopts from RapidMatch,
// VEQ and GuP: patterns are connected subgraphs sampled from the data
// graph itself, classified as dense (average degree > 2) or sparse
// otherwise, and named D<size> / S<size>.

// PatternConfig selects what to sample.
type PatternConfig struct {
	Size  int
	Dense bool
	// Count is how many patterns per configuration (the paper averages 10).
	Count int
	Seed  int64
}

// Name returns the paper-style configuration name, e.g. "D8" or "S16".
func (c PatternConfig) Name() string {
	k := "S"
	if c.Dense {
		k = "D"
	}
	return fmt.Sprintf("%s%d", k, c.Size)
}

// SamplePattern extracts one connected pattern of the given size from g:
// a random walk (with restarts into the collected frontier) gathers the
// vertex set, then either the full induced subgraph (dense) or a sparse
// skeleton of it (spanning tree plus at most size/4 extra edges) becomes
// the pattern. Returns an error when g is too small or the walk cannot
// reach the requested size.
func SamplePattern(g *graph.Graph, size int, dense bool, rng *rand.Rand) (*graph.Graph, error) {
	if size < 2 {
		return nil, fmt.Errorf("dataset: pattern size %d too small", size)
	}
	if g.NumVertices() < size {
		return nil, fmt.Errorf("dataset: data graph smaller than pattern")
	}
	for attempt := 0; attempt < 64; attempt++ {
		var vs []graph.VertexID
		var ok bool
		if dense {
			vs, ok = denseSample(g, size, rng)
		} else {
			vs, ok = walkSample(g, size, rng)
		}
		if !ok {
			continue
		}
		sub, _ := graph.InducedSubgraph(g, vs)
		if !dense {
			sub = sparsify(sub, rng)
		}
		if !graph.IsConnected(sub) {
			continue
		}
		avg := graph.AvgDegreeOf(sub)
		if dense && avg <= 2 {
			continue
		}
		if !dense && avg > 2 {
			continue
		}
		return sub, nil
	}
	return nil, fmt.Errorf("dataset: could not sample a %s pattern of size %d",
		map[bool]string{true: "dense", false: "sparse"}[dense], size)
}

// SamplePatterns draws cfg.Count patterns deterministically.
func SamplePatterns(g *graph.Graph, cfg PatternConfig) ([]*graph.Graph, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	count := cfg.Count
	if count == 0 {
		count = 10
	}
	out := make([]*graph.Graph, 0, count)
	for i := 0; i < count; i++ {
		p, err := SamplePattern(g, cfg.Size, cfg.Dense, rng)
		if err != nil {
			return nil, fmt.Errorf("%s pattern %d: %w", cfg.Name(), i, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// walkSample random-walks from a random seed vertex, restarting into the
// collected set when stuck, until size distinct vertices are gathered.
func walkSample(g *graph.Graph, size int, rng *rand.Rand) ([]graph.VertexID, bool) {
	start := graph.VertexID(rng.Intn(g.NumVertices()))
	in := map[graph.VertexID]bool{start: true}
	order := []graph.VertexID{start}
	cur := start
	for steps := 0; len(order) < size && steps < size*200; steps++ {
		ns := g.UndirectedNeighbors(cur)
		if len(ns) == 0 {
			cur = order[rng.Intn(len(order))]
			continue
		}
		next := ns[rng.Intn(len(ns))]
		if !in[next] {
			in[next] = true
			order = append(order, next)
		}
		if rng.Float64() < 0.25 {
			cur = order[rng.Intn(len(order))] // restart inside the sample
		} else {
			cur = next
		}
	}
	return order, len(order) == size
}

// denseSample greedily grows a vertex set from a high-degree seed, always
// adding the frontier vertex with the most edges into the current set
// (random among ties), which lands in locally dense regions so induced
// subgraphs exceed the dense threshold (avg degree > 2).
func denseSample(g *graph.Graph, size int, rng *rand.Rand) ([]graph.VertexID, bool) {
	start := graph.VertexID(rng.Intn(g.NumVertices()))
	for tries := 0; tries < 12; tries++ {
		cand := graph.VertexID(rng.Intn(g.NumVertices()))
		if g.Degree(cand) > g.Degree(start) {
			start = cand
		}
	}
	in := map[graph.VertexID]bool{start: true}
	set := []graph.VertexID{start}
	// edgesInto counts, per frontier vertex, its adjacency into the set.
	edgesInto := map[graph.VertexID]int{}
	addFrontier := func(v graph.VertexID) {
		for _, w := range g.UndirectedNeighbors(v) {
			if !in[w] {
				edgesInto[w]++
			}
		}
	}
	addFrontier(start)
	for len(set) < size {
		if len(edgesInto) == 0 {
			return nil, false
		}
		bestScore := 0
		for _, c := range edgesInto {
			if c > bestScore {
				bestScore = c
			}
		}
		var top []graph.VertexID
		for v, c := range edgesInto {
			if c == bestScore {
				top = append(top, v)
			}
		}
		// Map iteration order is random; sort so the rng choice is the only
		// source of randomness and sampling stays seed-deterministic.
		sort.Slice(top, func(i, j int) bool { return top[i] < top[j] })
		pick := top[rng.Intn(len(top))]
		delete(edgesInto, pick)
		in[pick] = true
		set = append(set, pick)
		addFrontier(pick)
	}
	return set, true
}

// sparsify reduces a connected graph to a random spanning tree plus at
// most one extra edge, keeping the result within the sparse classification
// (average degree <= 2).
func sparsify(g *graph.Graph, rng *rand.Rand) *graph.Graph {
	n := g.NumVertices()
	type edge struct {
		a, b graph.VertexID
		l    graph.EdgeLabel
	}
	var edges []edge
	g.Edges(func(a, b graph.VertexID, l graph.EdgeLabel) {
		edges = append(edges, edge{a, b, l})
	})
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })

	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	b := graph.NewBuilder(g.Directed())
	b.SetNames(g.Names)
	for v := 0; v < n; v++ {
		b.AddVertex(g.Label(graph.VertexID(v)))
	}
	var leftovers []edge
	for _, e := range edges {
		ra, rb := find(int(e.a)), find(int(e.b))
		if ra != rb {
			parent[ra] = rb
			b.AddEdge(e.a, e.b, e.l)
		} else {
			leftovers = append(leftovers, e)
		}
	}
	// Sparse means average degree <= 2, i.e. |E| <= |V|: the spanning
	// tree's n-1 edges leave room for exactly one extra edge.
	if len(leftovers) > 0 {
		b.AddEdge(leftovers[0].a, leftovers[0].b, leftovers[0].l)
	}
	return b.MustBuild()
}

// CliquePattern returns the k-clique pattern over the data graph's most
// common vertex label, the shape used by the higher-order clustering case
// study (8-cliques on EMAIL-EU).
func CliquePattern(g *graph.Graph, k int) *graph.Graph {
	best, bestCount := graph.Label(0), -1
	for v := 0; v < g.NumVertices(); v++ {
		l := g.Label(graph.VertexID(v))
		if c := g.LabelFrequency(l); c > bestCount {
			best, bestCount = l, c
		}
	}
	return graph.Clique(k, best)
}

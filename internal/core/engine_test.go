package core

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"csce/internal/baseline"
	"csce/internal/dataset"
	"csce/internal/graph"
	"csce/internal/plan"
)

func TestEngineEndToEnd(t *testing.T) {
	g := graph.Clique(6, 0)
	e := NewEngine(g)
	res, err := e.Match(graph.Clique(3, 0), MatchOptions{Variant: graph.EdgeInduced})
	if err != nil {
		t.Fatal(err)
	}
	if res.Embeddings != 120 {
		t.Fatalf("K3 in K6 = %d, want 120", res.Embeddings)
	}
	if res.Plan == nil || res.ClustersRead == 0 || res.ViewBytes == 0 {
		t.Fatalf("result metadata incomplete: %+v", res)
	}
	if res.Total() < res.ExecTime {
		t.Fatal("total time must include all stages")
	}
}

func TestEngineMatchesBruteForceOnDatasetSample(t *testing.T) {
	// End-to-end differential test on a realistic (small) dataset.
	spec := dataset.Spec{Name: "mini", Kind: dataset.PPI, Vertices: 60, TargetEdges: 180, VertexLabels: 4, Seed: 9}
	g := spec.Generate()
	e := NewEngine(g)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 6; i++ {
		p, err := dataset.SamplePattern(g, 4, i%2 == 0, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, variant := range graph.Variants() {
			want := baseline.BruteForce(g, p, variant)
			got, err := e.Count(p, variant)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("pattern %d %v: engine %d, oracle %d", i, variant, got, want)
			}
		}
	}
}

func TestEngineSaveLoad(t *testing.T) {
	spec := dataset.Spec{Name: "mini", Kind: dataset.PowerLaw, Vertices: 80, TargetEdges: 240, VertexLabels: 3, Seed: 4}
	g := spec.Generate()
	e := NewEngine(g)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	p, err := dataset.SamplePattern(g, 5, false, rng)
	if err != nil {
		t.Fatal(err)
	}
	a, err := e.Count(p, graph.EdgeInduced)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e2.Count(p, graph.EdgeInduced)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("save/load changed the count: %d vs %d", a, b)
	}
}

func TestEngineSymmetryBreaking(t *testing.T) {
	g := graph.Clique(7, 0)
	e := NewEngine(g)
	p := graph.Clique(4, 0)
	plainRes, err := e.Match(p, MatchOptions{Variant: graph.EdgeInduced})
	if err != nil {
		t.Fatal(err)
	}
	symRes, err := e.Match(p, MatchOptions{Variant: graph.EdgeInduced, SymmetryBreaking: true})
	if err != nil {
		t.Fatal(err)
	}
	if symRes.Automorphisms != 24 {
		t.Fatalf("Aut(K4) = %d, want 24", symRes.Automorphisms)
	}
	if plainRes.Embeddings != symRes.Embeddings*uint64(symRes.Automorphisms) {
		t.Fatalf("mappings (%d) must equal instances (%d) x |Aut| (%d)",
			plainRes.Embeddings, symRes.Embeddings, symRes.Automorphisms)
	}
}

func TestEnginePlanOnly(t *testing.T) {
	spec := dataset.Spec{Name: "mini", Kind: dataset.PowerLaw, Vertices: 100, TargetEdges: 300, VertexLabels: 5, Seed: 6}
	g := spec.Generate()
	e := NewEngine(g)
	rng := rand.New(rand.NewSource(7))
	p, err := dataset.SamplePattern(g, 12, false, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, variant := range graph.Variants() {
		pl, elapsed, err := e.PlanOnly(p, variant)
		if err != nil {
			t.Fatal(err)
		}
		if pl == nil || elapsed <= 0 {
			t.Fatal("plan-only must produce a plan and a duration")
		}
		if pl.Mode != plan.ModeCSCE {
			t.Fatal("plan-only must run the full pipeline")
		}
	}
}

func TestEngineTimeLimitPropagates(t *testing.T) {
	g := graph.Clique(40, 0)
	e := NewEngine(g)
	res, err := e.Match(graph.Clique(6, 0), MatchOptions{
		Variant:              graph.EdgeInduced,
		TimeLimit:            20 * time.Millisecond,
		DisableFactorization: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exec.TimedOut {
		t.Fatalf("expected timeout: %+v", res.Exec)
	}
}

// TestEngineIncrementalUpdates mutates the clustered graph through the
// engine and checks that matching results always equal the brute-force
// oracle on an equivalently mutated plain graph.
func TestEngineIncrementalUpdates(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		directed := seed%2 == 0
		n := 12
		b := graph.NewBuilder(directed)
		labels := make([]graph.Label, n)
		for i := range labels {
			labels[i] = graph.Label(rng.Intn(3))
			b.AddVertex(labels[i])
		}
		type edge struct {
			s, d graph.VertexID
			l    graph.EdgeLabel
		}
		edges := map[edge]bool{}
		for i := 0; i < 30; i++ {
			v, w := rng.Intn(n), rng.Intn(n)
			if v == w {
				continue
			}
			e := edge{graph.VertexID(v), graph.VertexID(w), 0}
			if directed {
				if edges[e] {
					continue
				}
			} else if edges[e] || edges[edge{e.d, e.s, 0}] {
				continue
			}
			edges[e] = true
			b.AddEdge(e.s, e.d, e.l)
		}
		g := b.MustBuild()
		engine := NewEngine(g)

		// Small two-label path pattern with the data graph's directedness.
		pb := graph.NewBuilder(directed)
		pb.AddVertex(0)
		pb.AddVertex(1)
		pb.AddVertex(0)
		pb.AddEdge(0, 1, 0)
		pb.AddEdge(1, 2, 0)
		p := pb.MustBuild()
		rebuild := func() *graph.Graph {
			nb := graph.NewBuilder(directed)
			for _, l := range labels {
				nb.AddVertex(l)
			}
			for e := range edges {
				nb.AddEdge(e.s, e.d, e.l)
			}
			return nb.MustBuild()
		}
		for step := 0; step < 20; step++ {
			v, w := rng.Intn(n), rng.Intn(n)
			if v == w {
				continue
			}
			e := edge{graph.VertexID(v), graph.VertexID(w), 0}
			present := edges[e]
			if !directed && !present {
				present = edges[edge{e.d, e.s, 0}]
			}
			if present {
				// Delete whichever orientation is stored.
				del := e
				if !edges[del] {
					del = edge{e.d, e.s, 0}
				}
				if err := engine.DeleteEdge(del.s, del.d, del.l); err != nil {
					t.Fatalf("seed %d: delete: %v", seed, err)
				}
				delete(edges, del)
			} else {
				if err := engine.InsertEdge(e.s, e.d, e.l); err != nil {
					t.Fatalf("seed %d: insert: %v", seed, err)
				}
				edges[e] = true
			}
			for _, variant := range graph.Variants() {
				want := baseline.BruteForce(rebuild(), p, variant)
				got, err := engine.Count(p, variant)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("seed %d step %d %v: engine %d, oracle %d", seed, step, variant, got, want)
				}
			}
		}
	}
}

func TestEngineRejectsMismatchedPattern(t *testing.T) {
	e := NewEngine(graph.Clique(5, 0)) // undirected
	p := graph.MustParse("t directed\nv 0 A\nv 1 A\ne 0 1\n")
	if _, err := e.Match(p, MatchOptions{}); err == nil {
		t.Fatal("directedness mismatch must surface as an error")
	}
	disc := graph.NewBuilder(false)
	disc.AddVertices(3, 0)
	disc.AddEdge(0, 1, 0)
	if _, err := e.Match(disc.MustBuild(), MatchOptions{}); err == nil {
		t.Fatal("disconnected pattern must surface as an error")
	}
}

func TestMatchProfileOption(t *testing.T) {
	e := NewEngine(graph.Clique(6, 0))
	res, err := e.Match(graph.Clique(3, 0), MatchOptions{Variant: graph.EdgeInduced, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile == nil || len(res.Profile.Levels) != 3 {
		t.Fatalf("profile missing: %+v", res.Profile)
	}
	if res.Embeddings != 120 {
		t.Fatalf("profiled count = %d, want 120", res.Embeddings)
	}
}

// TestEngineSaveLoadLabelEquivalence is the regression test for the CCSR
// index round-trip bug: a pattern whose label names appear in a different
// order than the data graph's used to intern to different label values
// against a reloaded index (the table was not serialized), silently
// matching the wrong clusters — 1 embedding direct vs 3 via the index on
// this fixture. Save/load must preserve match results for patterns parsed
// from text against either engine.
func TestEngineSaveLoadLabelEquivalence(t *testing.T) {
	// L46 has three L30 neighbors and L30 has one L7 neighbor, so a
	// label-value swap changes counts in both directions.
	g, err := graph.ParseString("t undirected\n" +
		"v 0 L46\nv 1 L30\nv 2 L30\nv 3 L30\nv 4 L7\n" +
		"e 0 1\ne 0 2\ne 0 3\ne 1 4\n")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(g)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Names() == nil {
		t.Fatal("loaded engine lost its label table")
	}
	// Patterns are parsed from text per engine, exactly as cscematch and
	// csced do — the pattern's label discovery order (L30 before L7, both
	// before L46) deliberately differs from the data graph's.
	for _, patText := range []string{
		"t undirected\nv 0 L30\nv 1 L7\ne 0 1\n",
		"t undirected\nv 0 L30\nv 1 L46\ne 0 1\n",
		"t undirected\nv 0 L7\nv 1 L30\nv 2 L46\ne 0 1\ne 1 2\n",
	} {
		parse := func(e *Engine) *graph.Graph {
			p, err := graph.ParseStringWith(patText, e.Names())
			if err != nil {
				t.Fatal(err)
			}
			return p
		}
		for _, variant := range graph.Variants() {
			direct, err := e.Count(parse(e), variant)
			if err != nil {
				t.Fatal(err)
			}
			viaIndex, err := e2.Count(parse(e2), variant)
			if err != nil {
				t.Fatal(err)
			}
			if direct != viaIndex {
				t.Fatalf("pattern %q %v: direct %d vs reloaded index %d",
					patText, variant, direct, viaIndex)
			}
		}
	}
}

package core

import (
	"fmt"

	"csce/internal/graph"
)

// Higher-order graph construction, the application the paper's
// introduction motivates: from all instances of a pattern P in G, build
// the weighted graph G_P whose edge (v_i, v_j) counts the instances of P
// containing both vertices. Downstream higher-order analyses (motif
// clustering, Section VII-G) consume these weights.

// PairWeights maps unordered data-vertex pairs to instance counts.
type PairWeights map[[2]graph.VertexID]uint64

// pairOf canonicalizes an unordered vertex pair.
func pairOf(a, b graph.VertexID) [2]graph.VertexID {
	if b < a {
		a, b = b, a
	}
	return [2]graph.VertexID{a, b}
}

// Weight returns the weight of the unordered pair (a, b).
func (w PairWeights) Weight(a, b graph.VertexID) uint64 { return w[pairOf(a, b)] }

// HigherOrderOptions configures BuildHigherOrder.
type HigherOrderOptions struct {
	// Variant selects the matching semantics; the paper's higher-order
	// analysis uses vertex-induced matching for exact motif instances, but
	// edge-induced is the common choice for cliques (identical there).
	Variant graph.Variant
	// Limit bounds the number of instances aggregated (0 = all).
	Limit uint64
	// CountAutomorphicOnce deduplicates automorphic images via symmetry
	// breaking, so each unordered instance contributes exactly once —
	// usually what a weight graph wants. When false, every mapping
	// contributes, scaling all weights by |Aut(P)|.
	CountAutomorphicOnce bool
}

// BuildHigherOrder enumerates the pattern's instances and accumulates the
// pairwise co-occurrence weights of G_P. It returns the weights and the
// number of instances aggregated.
func (e *Engine) BuildHigherOrder(p *graph.Graph, opts HigherOrderOptions) (PairWeights, uint64, error) {
	if opts.Variant == graph.Homomorphic {
		return nil, 0, fmt.Errorf("core: higher-order weights need injective matching (a homomorphic image can repeat vertices)")
	}
	weights := make(PairWeights)
	var instances uint64
	mo := MatchOptions{
		Variant:          opts.Variant,
		Limit:            opts.Limit,
		SymmetryBreaking: opts.CountAutomorphicOnce,
		OnEmbedding: func(m []graph.VertexID) bool {
			instances++
			for i := 0; i < len(m); i++ {
				for j := i + 1; j < len(m); j++ {
					weights[pairOf(m[i], m[j])]++
				}
			}
			return true
		},
	}
	if _, err := e.Match(p, mo); err != nil {
		return nil, 0, err
	}
	return weights, instances, nil
}

// HigherOrderGraph materializes G_P as an unlabeled graph over the same
// vertex IDs, keeping only pairs whose weight reaches minWeight. The
// returned weights map carries the dropped precision.
func (e *Engine) HigherOrderGraph(p *graph.Graph, opts HigherOrderOptions, minWeight uint64) (*graph.Graph, PairWeights, error) {
	weights, _, err := e.BuildHigherOrder(p, opts)
	if err != nil {
		return nil, nil, err
	}
	if minWeight == 0 {
		minWeight = 1
	}
	b := graph.NewBuilder(false)
	b.AddVertices(e.store.NumVertices(), 0)
	for pr, w := range weights {
		if w >= minWeight {
			b.AddEdge(pr[0], pr[1], 0)
		}
	}
	gp, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return gp, weights, nil
}

package core

import (
	"testing"

	"csce/internal/graph"
)

func TestBuildHigherOrderTrianglesInK4(t *testing.T) {
	g := graph.Clique(4, 0)
	e := NewEngine(g)
	p := graph.Clique(3, 0)

	// K4 contains C(4,3) = 4 triangles; every vertex pair lies in exactly
	// 2 of them.
	weights, instances, err := e.BuildHigherOrder(p, HigherOrderOptions{
		Variant:              graph.EdgeInduced,
		CountAutomorphicOnce: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if instances != 4 {
		t.Fatalf("instances = %d, want 4", instances)
	}
	if len(weights) != 6 {
		t.Fatalf("weighted pairs = %d, want 6", len(weights))
	}
	for pr, w := range weights {
		if w != 2 {
			t.Fatalf("pair %v weight = %d, want 2", pr, w)
		}
	}
	if weights.Weight(2, 0) != 2 || weights.Weight(0, 2) != 2 {
		t.Fatal("Weight must be orientation independent")
	}

	// Without deduplication every mapping counts: weights scale by
	// |Aut(K3)| = 6.
	all, mappings, err := e.BuildHigherOrder(p, HigherOrderOptions{Variant: graph.EdgeInduced})
	if err != nil {
		t.Fatal(err)
	}
	if mappings != 24 {
		t.Fatalf("mappings = %d, want 24", mappings)
	}
	for pr, w := range all {
		if w != 12 {
			t.Fatalf("pair %v mapping weight = %d, want 12", pr, w)
		}
	}
}

func TestBuildHigherOrderRejectsHomomorphic(t *testing.T) {
	e := NewEngine(graph.Clique(4, 0))
	if _, _, err := e.BuildHigherOrder(graph.Clique(3, 0), HigherOrderOptions{Variant: graph.Homomorphic}); err == nil {
		t.Fatal("homomorphic weights must be rejected")
	}
}

func TestHigherOrderGraph(t *testing.T) {
	// Two triangles sharing no vertices plus a bridge edge: the triangle
	// higher-order graph keeps only intra-triangle pairs; the bridge
	// vanishes.
	b := graph.NewBuilder(false)
	b.AddVertices(6, 0)
	for _, e := range [][2]graph.VertexID{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}} {
		b.AddEdge(e[0], e[1], 0)
	}
	g := b.MustBuild()
	e := NewEngine(g)
	gp, weights, err := e.HigherOrderGraph(graph.Clique(3, 0), HigherOrderOptions{
		Variant:              graph.EdgeInduced,
		CountAutomorphicOnce: true,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gp.NumVertices() != 6 {
		t.Fatalf("G_P has %d vertices, want 6", gp.NumVertices())
	}
	if gp.NumEdges() != 6 {
		t.Fatalf("G_P has %d edges, want the 6 intra-triangle pairs", gp.NumEdges())
	}
	if gp.HasEdge(2, 3) {
		t.Fatal("the bridge pair is in no triangle and must be dropped")
	}
	if weights.Weight(0, 1) != 1 {
		t.Fatalf("triangle pair weight = %d, want 1", weights.Weight(0, 1))
	}
	// A min-weight threshold above every weight empties G_P.
	gp2, _, err := e.HigherOrderGraph(graph.Clique(3, 0), HigherOrderOptions{
		Variant:              graph.EdgeInduced,
		CountAutomorphicOnce: true,
	}, 99)
	if err != nil {
		t.Fatal(err)
	}
	if gp2.NumEdges() != 0 {
		t.Fatal("threshold must drop light pairs")
	}
}

package core

import (
	"math/rand"
	"testing"

	"csce/internal/baseline"
	"csce/internal/dataset"
	"csce/internal/graph"
)

// TestMidScaleDifferentialAgainstBacktracking cross-checks the engine
// against the independent backtracking baseline on graphs far beyond the
// exhaustive oracle's reach (hundreds of vertices, thousands of edges).
// The two implementations share no code paths beyond the graph model, so
// agreement here guards against scale-dependent bugs — cache invalidation,
// factorization eligibility, cluster decompression — that tiny graphs
// cannot expose.
func TestMidScaleDifferentialAgainstBacktracking(t *testing.T) {
	specs := []dataset.Spec{
		{Name: "mid-ppi", Kind: dataset.PPI, Vertices: 400, TargetEdges: 1600, VertexLabels: 5, Seed: 21},
		{Name: "mid-power", Kind: dataset.PowerLaw, Vertices: 500, TargetEdges: 2500, VertexLabels: 8, Seed: 22},
		{Name: "mid-directed", Kind: dataset.PowerLaw, Directed: true, Vertices: 450, TargetEdges: 2000, VertexLabels: 6, Seed: 23},
	}
	bt := baseline.NewBacktrack()
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			g := spec.Generate()
			engine := NewEngine(g)
			rng := rand.New(rand.NewSource(spec.Seed))
			for i := 0; i < 4; i++ {
				size := 5 + rng.Intn(3)
				p, err := dataset.SamplePattern(g, size, i%2 == 0, rng)
				if err != nil {
					t.Fatalf("sample %d: %v", i, err)
				}
				for _, variant := range graph.Variants() {
					want, err := bt.Match(g, p, variant, baseline.Options{})
					if err != nil {
						t.Fatal(err)
					}
					got, err := engine.Count(p, variant)
					if err != nil {
						t.Fatal(err)
					}
					if got != want.Embeddings {
						t.Fatalf("pattern %d (size %d) %v: engine %d, backtracking %d",
							i, size, variant, got, want.Embeddings)
					}
					// The parallel executor must agree too.
					par, err := engine.Match(p, MatchOptions{Variant: variant, Workers: 4})
					if err != nil {
						t.Fatal(err)
					}
					if par.Embeddings != got {
						t.Fatalf("pattern %d %v: parallel %d, sequential %d",
							i, variant, par.Embeddings, got)
					}
				}
			}
		})
	}
}

// TestMidScaleUpdatesKeepAgreement runs a burst of random engine updates
// on a mid-size graph and re-checks agreement with the baseline afterward,
// covering compaction paths that small update tests never reach.
func TestMidScaleUpdatesKeepAgreement(t *testing.T) {
	spec := dataset.Spec{Name: "mid-upd", Kind: dataset.PowerLaw, Vertices: 300, TargetEdges: 1500, VertexLabels: 4, Seed: 31}
	g := spec.Generate()
	engine := NewEngine(g)
	rng := rand.New(rand.NewSource(31))

	type edgeT struct {
		s, d graph.VertexID
	}
	inBase := map[edgeT]bool{}
	g.Edges(func(a, b graph.VertexID, _ graph.EdgeLabel) { inBase[edgeT{a, b}] = true })
	var added []edgeT
	// Enough inserts to trigger compaction in the hottest clusters.
	for len(added) < 400 {
		s := graph.VertexID(rng.Intn(g.NumVertices()))
		d := graph.VertexID(rng.Intn(g.NumVertices()))
		if s == d || inBase[edgeT{s, d}] || inBase[edgeT{d, s}] {
			continue
		}
		if err := engine.InsertEdge(s, d, 0); err != nil {
			continue
		}
		inBase[edgeT{s, d}] = true
		added = append(added, edgeT{s, d})
	}
	// Delete half of them again.
	for _, e := range added[:200] {
		if err := engine.DeleteEdge(e.s, e.d, 0); err != nil {
			t.Fatal(err)
		}
		delete(inBase, e)
	}

	// Rebuild the reference graph and compare counts.
	b := graph.NewBuilder(false)
	for v := 0; v < g.NumVertices(); v++ {
		b.AddVertex(g.Label(graph.VertexID(v)))
	}
	for e := range inBase {
		b.AddEdge(e.s, e.d, 0)
	}
	ref := b.MustBuild()
	bt := baseline.NewBacktrack()
	p, err := dataset.SamplePattern(ref, 6, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, variant := range graph.Variants() {
		want, err := bt.Match(ref, p, variant, baseline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := engine.Count(p, variant)
		if err != nil {
			t.Fatal(err)
		}
		if got != want.Embeddings {
			t.Fatalf("%v after updates: engine %d, backtracking %d", variant, got, want.Embeddings)
		}
	}
}

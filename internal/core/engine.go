// Package core is the CSCE engine: the paper's primary contribution
// assembled end to end. An Engine owns the offline product of clustering a
// data graph (the CCSR store, Section IV); Match runs the online pipeline
// of Fig. 2 — cluster selection (Algorithm 1), plan optimization with GCF,
// the dependency DAG, and LDSF (Section VI), and the pipelined
// worst-case-optimal join execution with SCE candidate reuse (Section V) —
// for any of the three subgraph-matching variants.
package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"csce/internal/ccsr"
	"csce/internal/exec"
	"csce/internal/graph"
	"csce/internal/obs"
	"csce/internal/plan"
)

// Engine holds the clustered data graph. Build it once per data graph and
// reuse it across matching tasks; the paper's offline/online split exists
// exactly so clustering is not repeated per task.
type Engine struct {
	store *ccsr.Store
	names *graph.LabelTable
}

// NewEngine clusters g into CCSR form. The original graph is not retained:
// the store is equivalent to it for matching purposes.
func NewEngine(g *graph.Graph) *Engine {
	return &Engine{store: ccsr.Build(g), names: g.Names}
}

// Load reads an engine previously written with Save. The label table
// round-trips (codec version 2), so Names is available for pattern parsing
// just as with a freshly built engine.
func Load(r io.Reader) (*Engine, error) {
	store, err := ccsr.Decode(r)
	if err != nil {
		return nil, err
	}
	return &Engine{store: store, names: store.Names()}, nil
}

// FromStore wraps an existing CCSR store in an engine without re-clustering.
// The live-ingest subsystem uses it to publish mutated snapshot clones; the
// store's own label table serves for pattern parsing, exactly as with Load.
func FromStore(store *ccsr.Store) *Engine {
	return &Engine{store: store, names: store.Names()}
}

// Save serializes the clustered data graph.
func (e *Engine) Save(w io.Writer) error { return e.store.Encode(w) }

// Store exposes the underlying CCSR store (plan inspection, statistics).
func (e *Engine) Store() *ccsr.Store { return e.store }

// Names returns the label table of the originating graph, if known.
// Patterns should be parsed with it so label names align.
func (e *Engine) Names() *graph.LabelTable { return e.names }

// InsertEdge adds an edge to the clustered data graph (incremental CCSR
// maintenance; the engine remains equivalent to re-clustering the mutated
// graph). For an undirected engine the edge is symmetric.
func (e *Engine) InsertEdge(src, dst graph.VertexID, el graph.EdgeLabel) error {
	return e.store.InsertEdge(src, dst, el)
}

// DeleteEdge removes an existing edge from the clustered data graph.
func (e *Engine) DeleteEdge(src, dst graph.VertexID, el graph.EdgeLabel) error {
	return e.store.DeleteEdge(src, dst, el)
}

// AddVertex appends an isolated vertex with the given label and returns
// its ID.
func (e *Engine) AddVertex(l graph.Label) graph.VertexID { return e.store.AddVertex(l) }

// MatchOptions configures one matching task.
type MatchOptions struct {
	// Variant selects edge-induced (default), vertex-induced, or
	// homomorphic matching.
	Variant graph.Variant
	// Mode selects the plan-optimization ablation; the default ModeCSCE is
	// the full pipeline.
	Mode plan.Mode
	// Limit stops after this many embeddings (0 = all); exact in both the
	// serial and parallel execution paths.
	Limit uint64
	// TimeLimit bounds the execution stage (0 = none).
	TimeLimit time.Duration
	// Context, when non-nil, cancels the task cooperatively: it is checked
	// between the read/plan/execute stages and polled inside the
	// backtracking loop, so a timeout or client disconnect stops the search
	// instead of burning cores. Cancellation during execution is graceful —
	// Match returns the partial result with Exec.Cancelled set and a nil
	// error; a context that is already dead before execution starts returns
	// the context's error.
	Context context.Context
	// PreparedPlan, when non-nil, skips the optimization stage and executes
	// this plan directly. It must have been produced by plan.Optimize (or
	// plan.FromOrder) for the same pattern, store, and variant — the serving
	// layer's plan cache uses this to amortize GCF/DAG/LDSF across repeated
	// patterns.
	PreparedPlan *plan.Plan
	// OnEmbedding receives each embedding, indexed by pattern vertex ID.
	// Return false to stop. Disables factorized counting.
	OnEmbedding func(mapping []graph.VertexID) bool
	// SymmetryBreaking derives f(a)<f(b) constraints from the pattern's
	// automorphism group, so each unordered instance is found exactly once.
	// Embeddings then counts instances, not mappings. (CSCE itself does not
	// apply this by default — Finding 2 — but the Fig. 14a ablation and the
	// clique case study need it.)
	SymmetryBreaking bool
	// DisableSCECache and DisableFactorization switch off the SCE
	// optimizations for ablation runs.
	DisableSCECache      bool
	DisableFactorization bool
	// Workers > 1 runs the execution stage in parallel by partitioning the
	// first vertex's candidates (an extension; the paper's evaluation is
	// single-threaded). Counts are exact; OnEmbedding is serialized.
	Workers int
	// Profile collects a per-level execution profile (MatchResult.Profile)
	// in both the serial and parallel paths; parallel runs merge the
	// per-worker level counters.
	Profile bool
}

// MatchResult reports a matching task with the stage timings the paper's
// experiments break out (reading/decompression, optimization, execution).
type MatchResult struct {
	// Embeddings found (mappings; instances when SymmetryBreaking is set).
	Embeddings uint64
	// Plan is the optimized plan, including SCE statistics (Fig. 12).
	Plan *plan.Plan
	// Automorphisms is |Aut(P)| when SymmetryBreaking was used, else 0.
	Automorphisms int

	// ReadTime covers ReadCSR cluster selection and decompression.
	ReadTime time.Duration
	// PlanTime covers GCF + DAG + LDSF (+ automorphisms if requested).
	PlanTime time.Duration
	// ExecTime covers the join execution.
	ExecTime time.Duration

	// ClustersRead and ViewBytes quantify CCSR overhead (Fig. 11).
	ClustersRead int
	ViewBytes    int

	// Exec carries the detailed execution counters.
	Exec exec.Stats
	// Profile is the per-level execution profile when requested.
	Profile *exec.Profile
}

// Total returns the end-to-end time, the paper's primary metric.
func (r MatchResult) Total() time.Duration { return r.ReadTime + r.PlanTime + r.ExecTime }

// Throughput returns embeddings per second of total time (Fig. 7/8).
func (r MatchResult) Throughput() float64 {
	if r.Total() <= 0 {
		return 0
	}
	return float64(r.Embeddings) / r.Total().Seconds()
}

// Match finds all embeddings of pattern p under the given options.
// When opts.Context carries an obs.Trace, Match records "core.read" and
// "core.plan" spans on it (and exec records its own), so a traced query's
// breakdown reaches all the way down without the engine knowing who asked.
func (e *Engine) Match(p *graph.Graph, opts MatchOptions) (MatchResult, error) {
	var res MatchResult

	if opts.Context != nil {
		if err := opts.Context.Err(); err != nil {
			return res, err
		}
	}
	_, endRead := obs.StartSpanCtx(opts.Context, "core.read")
	readStart := time.Now()
	view, err := e.store.ReadCSR(p, opts.Variant)
	if err != nil {
		return res, fmt.Errorf("core: read clusters: %w", err)
	}
	endRead(obs.Int("clusters", int64(view.NumClusters())),
		obs.Int("view_bytes", int64(view.DecompressedBytes())))
	res.ReadTime = time.Since(readStart)
	res.ClustersRead = view.NumClusters()
	res.ViewBytes = view.DecompressedBytes()

	_, endPlan := obs.StartSpanCtx(opts.Context, "core.plan")
	planStart := time.Now()
	pl := opts.PreparedPlan
	if pl == nil {
		var err error
		pl, err = plan.Optimize(p, e.store, opts.Variant, opts.Mode)
		if err != nil {
			return res, fmt.Errorf("core: optimize: %w", err)
		}
	}
	execOpts := exec.Options{
		Limit:                opts.Limit,
		TimeLimit:            opts.TimeLimit,
		Ctx:                  opts.Context,
		OnEmbedding:          opts.OnEmbedding,
		DisableSCECache:      opts.DisableSCECache,
		DisableFactorization: opts.DisableFactorization,
		Profile:              opts.Profile,
	}
	if opts.SymmetryBreaking {
		auts := plan.Automorphisms(p)
		execOpts.SymmetryConstraints = plan.SymmetryConstraints(p, auts)
		res.Automorphisms = len(auts)
	}
	endPlan(obs.Str("mode", pl.Mode.String()),
		obs.Int("sce_vertices", int64(pl.SCE.SCEVertices)),
		obs.Int("cluster_sce_vertices", int64(pl.SCE.ClusterSCEVertices)),
		obs.Int("automorphisms", int64(res.Automorphisms)))
	res.PlanTime = time.Since(planStart)
	res.Plan = pl

	var st exec.Stats
	if opts.Workers > 1 {
		st, err = exec.RunParallel(view, pl, execOpts, opts.Workers)
	} else {
		st, err = exec.Run(view, pl, execOpts)
	}
	if err != nil {
		return res, fmt.Errorf("core: execute: %w", err)
	}
	res.Exec = st
	res.ExecTime = st.Elapsed
	res.Embeddings = st.Embeddings
	res.Profile = st.Profile
	return res, nil
}

// Count is a convenience wrapper counting all embeddings of p under a
// variant with default options.
func (e *Engine) Count(p *graph.Graph, variant graph.Variant) (uint64, error) {
	res, err := e.Match(p, MatchOptions{Variant: variant})
	return res.Embeddings, err
}

// PlanOnly runs just the optimization pipeline — the Fig. 10 scalability
// experiment measures this stage in isolation for patterns up to 2000
// vertices.
func (e *Engine) PlanOnly(p *graph.Graph, variant graph.Variant) (*plan.Plan, time.Duration, error) {
	start := time.Now()
	pl, err := plan.Optimize(p, e.store, variant, plan.ModeCSCE)
	return pl, time.Since(start), err
}

package csce_test

// One benchmark per paper artifact (tables and figures of Section VII),
// each driving the corresponding experiment of internal/bench in reduced
// (Quick) mode, plus micro-benchmarks of the engine's building blocks.
// Run the full-size experiments with cmd/cscebench instead:
//
//	go run ./cmd/cscebench -exp all

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
	"time"

	"csce"
	"csce/internal/bench"
	"csce/internal/dataset"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	cfg := bench.Config{
		Out:               io.Discard,
		TimeLimit:         200 * time.Millisecond,
		PatternsPerConfig: 1,
		Quick:             true,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := exp.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3Capabilities(b *testing.B)       { runExperiment(b, "table3") }
func BenchmarkTable4DatasetStats(b *testing.B)       { runExperiment(b, "table4") }
func BenchmarkFig6TotalTime(b *testing.B)            { runExperiment(b, "fig6") }
func BenchmarkFig7VariantComparison(b *testing.B)    { runExperiment(b, "fig7") }
func BenchmarkFig8Throughput(b *testing.B)           { runExperiment(b, "fig8") }
func BenchmarkFig9EmbeddingScalability(b *testing.B) { runExperiment(b, "fig9") }
func BenchmarkFig10PlanScalability(b *testing.B)     { runExperiment(b, "fig10") }
func BenchmarkFig11CCSROverhead(b *testing.B)        { runExperiment(b, "fig11") }
func BenchmarkFig12SCEOccurrence(b *testing.B)       { runExperiment(b, "fig12") }
func BenchmarkFig13PlanQuality(b *testing.B)         { runExperiment(b, "fig13") }
func BenchmarkFig14SymmetryAndDensity(b *testing.B)  { runExperiment(b, "fig14") }
func BenchmarkCaseStudyMotifClustering(b *testing.B) { runExperiment(b, "casestudy") }

// ---- engine micro-benchmarks ----

func yeastFixture(b *testing.B) (*csce.Graph, *csce.Engine, []*csce.Graph) {
	b.Helper()
	spec, _ := dataset.ByName("Yeast")
	g := spec.Generate()
	engine := csce.NewEngine(g)
	patterns, err := dataset.SamplePatterns(g, dataset.PatternConfig{Size: 8, Dense: true, Count: 3, Seed: 77})
	if err != nil {
		b.Fatal(err)
	}
	return g, engine, patterns
}

// BenchmarkClusterBuild measures the offline CCSR construction stage.
func BenchmarkClusterBuild(b *testing.B) {
	spec, _ := dataset.ByName("Yeast")
	g := spec.Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = csce.NewEngine(g)
	}
}

// BenchmarkMatchEdgeInduced measures a full match (read + plan + execute)
// of a dense 8-vertex pattern on the Yeast analogue.
func BenchmarkMatchEdgeInduced(b *testing.B) {
	_, engine, patterns := yeastFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := patterns[i%len(patterns)]
		if _, err := engine.Match(p, csce.MatchOptions{Variant: csce.EdgeInduced}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatchVertexInduced covers the negation-checking path.
func BenchmarkMatchVertexInduced(b *testing.B) {
	_, engine, patterns := yeastFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := patterns[i%len(patterns)]
		if _, err := engine.Match(p, csce.MatchOptions{Variant: csce.VertexInduced}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatchHomomorphic covers the non-injective path with
// factorized counting.
func BenchmarkMatchHomomorphic(b *testing.B) {
	_, engine, patterns := yeastFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := patterns[i%len(patterns)]
		if _, err := engine.Match(p, csce.MatchOptions{Variant: csce.Homomorphic, TimeLimit: time.Second}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSCECacheAblation quantifies the candidate-reuse speedup the
// SCE cache provides on the same workload.
func BenchmarkSCECacheAblation(b *testing.B) {
	_, engine, patterns := yeastFixture(b)
	for _, disabled := range []bool{false, true} {
		name := "cache-on"
		if disabled {
			name = "cache-off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := patterns[i%len(patterns)]
				_, err := engine.Match(p, csce.MatchOptions{
					Variant:         csce.EdgeInduced,
					DisableSCECache: disabled,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelMatch compares the sequential executor with 2- and
// 4-way parallel execution on the same workload.
func BenchmarkParallelMatch(b *testing.B) {
	_, engine, patterns := yeastFixture(b)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := patterns[i%len(patterns)]
				_, err := engine.Match(p, csce.MatchOptions{
					Variant: csce.EdgeInduced,
					Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIncrementalUpdate measures InsertEdge+DeleteEdge round trips
// against the clustered index, including amortized compactions.
func BenchmarkIncrementalUpdate(b *testing.B) {
	spec, _ := dataset.ByName("Yeast")
	g := spec.Generate()
	engine := csce.NewEngine(g)
	rng := rand.New(rand.NewSource(5))
	n := g.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := csce.VertexID(rng.Intn(n))
		dst := csce.VertexID(rng.Intn(n))
		if src == dst {
			continue
		}
		if err := engine.InsertEdge(src, dst, 7); err != nil {
			continue // already present from an earlier iteration
		}
		if err := engine.DeleteEdge(src, dst, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeltaMatching measures one continuous-matching event: insert
// an edge, enumerate the new embeddings of an 8-vertex pattern, delete it.
func BenchmarkDeltaMatching(b *testing.B) {
	g, engine, patterns := yeastFixture(b)
	p := patterns[0]
	rng := rand.New(rand.NewSource(9))
	n := g.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := csce.VertexID(rng.Intn(n))
		dst := csce.VertexID(rng.Intn(n))
		if src == dst {
			continue
		}
		if err := engine.InsertEdge(src, dst, 0); err != nil {
			continue
		}
		_, err := csce.NewEmbeddings(engine, p, csce.DeltaEdge{Src: src, Dst: dst},
			csce.DeltaOptions{Variant: csce.EdgeInduced})
		if err != nil {
			b.Fatal(err)
		}
		if err := engine.DeleteEdge(src, dst, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryParse measures MATCH-query compilation.
func BenchmarkQueryParse(b *testing.B) {
	g, _ := csce.ParseGraph(strings.NewReader("t directed\nv 0 A\nv 1 B\ne 0 1 r\n"))
	const q = "MATCH (a:A)-[:r]->(b:B), (c:A)-[:r]->(b), (a)-[:r]->(d:B), (c)-[:r]->(d)"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := csce.ParseQuery(q, g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHigherOrderWeights measures G_P construction (triangle weights
// on the Yeast analogue).
func BenchmarkHigherOrderWeights(b *testing.B) {
	spec, _ := dataset.ByName("Yeast")
	g := spec.Generate()
	engine := csce.NewEngine(g)
	p := csce.Clique(3, g.Label(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := engine.BuildHigherOrder(p, csce.HigherOrderOptions{
			Variant:              csce.EdgeInduced,
			CountAutomorphicOnce: true,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanOptimization isolates GCF + DAG + LDSF for a 64-vertex
// pattern.
func BenchmarkPlanOptimization(b *testing.B) {
	spec, _ := dataset.ByName("Patent")
	spec.Vertices = 5000
	spec.TargetEdges = 45000
	spec.Name = "Patent-bench"
	g := spec.Generate()
	engine := csce.NewEngine(g)
	rng := rand.New(rand.NewSource(13))
	p, err := dataset.SamplePattern(g, 64, false, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := engine.PlanOnly(p, csce.EdgeInduced); err != nil {
			b.Fatal(err)
		}
	}
}

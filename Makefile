GO ?= go

.PHONY: build test race live-race crash-race shard-race prefilter-race vet lint alloc-gate docscheck ci bench-obs bench-serve bench-prefilter

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The whole suite re-runs under the race detector; part of the tier-1
# check. (Formerly only server/exec/csced — bench and the baselines run
# enough goroutines to deserve the net too.)
race:
	$(GO) test -race ./...

# Focused race pass over the live-ingest subsystem: the snapshot-swap and
# subscription paths are the most concurrency-dense code in the tree, so
# they get a dedicated run (with -count=2 for schedule diversity) on top
# of the whole-suite `race` target.
live-race:
	$(GO) test -race -count=2 ./internal/live
	$(GO) test -race -count=2 -run 'TestE2EConcurrentReadersAcrossSwaps|TestSubscribeDeltaEquation|TestMutateEndpoint' ./internal/server

# Focused race pass over the scatter-gather subsystem: the coordinator
# runs goroutine-per-shard scatters, K concurrent shard writers, and an
# append-only ownership map — the exactness gate (sharded counts ==
# single-store counts, including under concurrent mutations) re-runs here
# under the race detector with -count=2 for schedule diversity.
shard-race:
	$(GO) test -race -count=2 ./internal/shard
	$(GO) test -race -run 'TestSharded' ./internal/server

# Never-wrong property gate for the admission pre-filters, under the race
# detector: the prefilter unit suite (incremental == rebuild, soundness
# against the executor), the live-ingest signature maintenance tests, and
# the shard-layer TestPrefilterNeverWrong corpus×K×mutation matrix plus
# the concurrent check/mutate race test. A Reject must always coincide
# with an executor count of zero.
prefilter-race:
	$(GO) test -race ./internal/prefilter
	$(GO) test -race -run 'TestPrefilter' ./internal/live ./internal/shard ./internal/server

# Crash-recovery drills: the tests re-exec the (race-instrumented) test
# binary as a real csced and SIGKILL it mid-mutation-storm. TestCrashRecovery
# verifies the restart recovers the exact seq/epoch and vertex/edge/match
# counts; TestCrashResumeSubscription kills the daemon under a live
# subscriber and proves the persisted resume log makes the restart
# transparent: the resumed stream satisfies count = before + Σdeltas −
# Σretractions across the crash. See cmd/csced/crash_test.go.
crash-race:
	$(GO) test -race -run 'TestCrash' ./cmd/csced

vet:
	$(GO) vet ./...

# Project-specific static analysis: stdlib-only imports, atomic access
# consistency, mutex discipline, context propagation, enum-exhaustive
# switches, unchecked errors, snapshot refcount balance, lock ordering,
# goroutine exit paths. See internal/lint and DESIGN.md.
lint:
	$(GO) run ./cmd/cscelint ./...

# The hot-path allocation gate in isolation: //csce:hotpath functions are
# checked against the compiler's escape analysis, with known allocations
# pinned (and justified) in ALLOC_BUDGET.json. `lint` already includes
# this; the standalone target is for iterating on hot-path code.
alloc-gate:
	$(GO) run ./cmd/cscelint -checks allocfree ./...

# Flag/documentation drift gate: every flag the csced, cscematch, and
# cscebenchserve binaries define must be documented in README.md or
# OPERATIONS.md (stdlib-only checker; see cmd/cscedocs).
docscheck:
	$(GO) run ./cmd/cscedocs

ci: build vet lint alloc-gate docscheck test race live-race crash-race shard-race prefilter-race

# Observability hot-path benchmarks plus the enforced budgets: <50ns/op on
# histogram recording and <150ns/op on the span-export enqueue — the two
# operations the query path pays per request (OBS_BENCH=1 turns the
# measurements into assertions; without it the budget tests only log).
bench-obs:
	OBS_BENCH=1 $(GO) test ./internal/obs -run TestHistogramRecordBudget -bench . -benchmem
	OBS_BENCH=1 $(GO) test ./internal/obs/export -run TestEnqueueBudget -bench . -benchmem

# Concurrent-load serving benchmark: the same graph as one single-store
# live graph vs a K=4 scatter-gather coordinator, 4 writers + 1 reader.
# Writes BENCH_serve.json (checked in) and fails unless sharded mutation
# throughput is at least 2x the single-store number.
bench-serve:
	$(GO) run ./cmd/cscebenchserve -out BENCH_serve.json -check

# Admission pre-filter benchmark: label/cluster/degree-impossible queries
# against a live-mutating K=4 coordinator. Writes BENCH_prefilter.json
# (checked in: reject-path latency quantiles, per-filter breakdown) and
# fails unless at least 90% of the impossible workload is rejected before
# the scatter.
bench-prefilter:
	$(GO) run ./cmd/cscebenchserve -mode prefilter -out BENCH_prefilter.json -check

GO ?= go

.PHONY: build test race vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages (server, executor) re-run under the
# race detector; part of the tier-1 check.
race:
	$(GO) test -race ./internal/server/... ./internal/exec/... ./cmd/csced/...

vet:
	$(GO) vet ./...

ci: build vet test race

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"csce/internal/graph"
)

func TestListDatasets(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-list"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"DIP", "Yeast", "RoadCA", "EMAIL-EU"} {
		if !strings.Contains(out.String(), name) {
			t.Fatalf("-list missing %s", name)
		}
	}
}

func TestGenerateGraphFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "yeast.graph")
	var out, errOut bytes.Buffer
	if err := run([]string{"-dataset", "Yeast", "-out", path, "-stats"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := graph.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() < 2000 || g.NumEdges() < 5000 {
		t.Fatalf("generated graph too small: %d/%d", g.NumVertices(), g.NumEdges())
	}
	if !strings.Contains(out.String(), "Yeast") {
		t.Fatal("-stats output missing")
	}
}

func TestSamplePatternsToFiles(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "d8")
	var out, errOut bytes.Buffer
	err := run([]string{"-dataset", "Yeast", "-pattern", "8", "-dense", "-count", "2", "-out", prefix}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		f, err := os.Open(prefix + "-" + string(rune('0'+i)) + ".graph")
		if err != nil {
			t.Fatal(err)
		}
		p, err := graph.Parse(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if p.NumVertices() != 8 || !graph.IsConnected(p) {
			t.Fatalf("pattern %d malformed", i)
		}
	}
}

func TestGenErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-dataset", "nope", "-out", "/tmp/x"}, &out, &errOut); err == nil {
		t.Fatal("unknown dataset must error")
	}
	if err := run([]string{"-dataset", "Yeast"}, &out, &errOut); err == nil {
		t.Fatal("no action must error")
	}
	if err := run([]string{"-dataset", "Yeast", "-pattern", "8"}, &out, &errOut); err == nil {
		t.Fatal("-pattern without -out must error")
	}
}

// Command cscegen generates the synthetic datasets and sampled patterns
// used throughout the reproduction, writing them in the text edge-list
// format read by cscematch.
//
// Generate a data graph:
//
//	cscegen -dataset Yeast -out yeast.graph
//
// Sample three dense 8-vertex patterns from it:
//
//	cscegen -dataset Yeast -pattern 8 -dense -count 3 -out yeast-d8
//
// List available datasets:
//
//	cscegen -list
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"csce/internal/dataset"
	"csce/internal/graph"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "cscegen: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cscegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list    = fs.Bool("list", false, "list available datasets and exit")
		name    = fs.String("dataset", "", "dataset to generate (see -list)")
		out     = fs.String("out", "", "output file (or prefix with -pattern)")
		pattern = fs.Int("pattern", 0, "sample patterns of this size instead of writing the graph")
		dense   = fs.Bool("dense", false, "sample dense patterns (avg degree > 2)")
		count   = fs.Int("count", 1, "number of patterns to sample")
		seed    = fs.Int64("seed", 1, "sampling seed")
		stats   = fs.Bool("stats", false, "print Table IV statistics for the dataset")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, s := range append(dataset.Catalog(), dataset.EmailEU()) {
			fmt.Fprintf(stdout, "%-14s %7d vertices %9d edges (analogue of %dv/%de)\n",
				s.Name, s.Vertices, s.TargetEdges, s.PaperVertices, s.PaperEdges)
		}
		return nil
	}
	spec, ok := dataset.ByName(*name)
	if !ok {
		return fmt.Errorf("unknown dataset %q (use -list)", *name)
	}
	g := spec.Generate()

	if *stats {
		fmt.Fprintln(stdout, graph.ComputeStats(spec.Name, g))
	}
	if *pattern > 0 {
		if *out == "" {
			return fmt.Errorf("-out prefix required with -pattern")
		}
		rng := rand.New(rand.NewSource(*seed))
		for i := 0; i < *count; i++ {
			p, err := dataset.SamplePattern(g, *pattern, *dense, rng)
			if err != nil {
				return fmt.Errorf("sample pattern: %w", err)
			}
			path := fmt.Sprintf("%s-%d.graph", *out, i)
			if err := writeGraph(path, p); err != nil {
				return fmt.Errorf("write %s: %w", path, err)
			}
			fmt.Fprintf(stdout, "wrote %s (%d vertices, %d edges)\n", path, p.NumVertices(), p.NumEdges())
		}
		return nil
	}
	if *out != "" {
		if err := writeGraph(*out, g); err != nil {
			return fmt.Errorf("write %s: %w", *out, err)
		}
		fmt.Fprintf(stdout, "wrote %s (%d vertices, %d edges)\n", *out, g.NumVertices(), g.NumEdges())
		return nil
	}
	if !*stats {
		return fmt.Errorf("nothing to do: pass -out, -pattern, or -stats")
	}
	return nil
}

func writeGraph(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := graph.Format(f, g); err != nil {
		return err
	}
	return f.Close()
}

// Command cscelint runs the project's static analyzer suite
// (internal/lint) over the module and fails on any finding.
//
//	cscelint ./...                       # whole module (the CI invocation)
//	cscelint ./internal/server           # one package
//	cscelint -checks errchecklite ./...  # a subset of the suite
//	cscelint -json ./...                 # machine-readable findings
//	cscelint -list                       # describe the available checks
//
// Diagnostics print as file:line:col: [check] message. Exit status is 0
// when clean, 1 on findings, 2 on usage or load errors. Suppress a single
// finding with a //lint:ignore directive (see internal/lint).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"csce/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cscelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		checksFlag = fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
		jsonOut    = fs.Bool("json", false, "emit a versioned JSON report ({schema_version, findings})")
		dir        = fs.String("C", ".", "module directory to analyze")
		list       = fs.Bool("list", false, "list available checks and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, c := range lint.Checks() {
			fmt.Fprintf(stdout, "%-18s %s\n", c.Name, c.Doc)
		}
		return 0
	}

	checks := lint.Checks()
	if *checksFlag != "" {
		checks = checks[:0:0]
		for _, name := range strings.Split(*checksFlag, ",") {
			name = strings.TrimSpace(name)
			c, ok := lint.CheckByName(name)
			if !ok {
				known := make([]string, 0, len(lint.Checks()))
				for _, k := range lint.Checks() {
					known = append(known, k.Name)
				}
				sort.Strings(known)
				fmt.Fprintf(stderr, "cscelint: unknown check %q (known: %s)\n", name, strings.Join(known, ", "))
				return 2
			}
			checks = append(checks, c)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "cscelint: %v\n", err)
		return 2
	}
	// The allocation gate needs the compiler's escape-analysis diagnostics
	// on top of the type information; only pay for that build when the
	// check is selected and some package actually declares a hot path.
	for _, c := range checks {
		if c == lint.AllocFree && lint.HasHotPathAnnotations(pkgs) {
			if err := lint.AttachAllocs(*dir, pkgs, patterns...); err != nil {
				fmt.Fprintf(stderr, "cscelint: %v\n", err)
				return 2
			}
			break
		}
	}
	diags := lint.Run(pkgs, checks)

	if *jsonOut {
		type finding struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Column  int    `json:"column"`
			Check   string `json:"check"`
			Message string `json:"message"`
		}
		type report struct {
			SchemaVersion int       `json:"schema_version"`
			Findings      []finding `json:"findings"`
		}
		out := report{SchemaVersion: 1, Findings: make([]finding, 0, len(diags))}
		for _, d := range diags {
			out.Findings = append(out.Findings, finding{
				File:    relPath(*dir, d.Pos.Filename),
				Line:    d.Pos.Line,
				Column:  d.Pos.Column,
				Check:   d.Check,
				Message: d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "cscelint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", relPath(*dir, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Check, d.Message)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// relPath shortens absolute file names relative to the analyzed module for
// readable, stable output; paths outside dir stay absolute.
func relPath(dir, file string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return file
	}
	rel, err := filepath.Rel(abs, file)
	if err != nil || strings.HasPrefix(rel, "..") {
		return file
	}
	return rel
}

package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// fixture returns the -C argument for one of internal/lint's golden
// fixture modules, so these tests drive the real driver end-to-end over
// the same trees the analyzer unit tests use.
func fixture(name string) string {
	return filepath.Join("..", "..", "internal", "lint", "testdata", "src", name)
}

func runLint(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestFindingsFailTheRun(t *testing.T) {
	code, out, _ := runLint(t, "-C", fixture("errchecklite"), "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	for _, want := range []string{
		"fixture.go:20:2: [errchecklite] mayFail returns an error that is not checked",
		"fixture.go:25:2: [errchecklite] os.Create returns an error that is not checked",
		"fixture.go:67:2: [errchecklite] f.Sync returns an error that is not checked",
		"fixture.go:68:2: [errchecklite] os.Rename returns an error that is not checked",
		"fixture.go:70:2: [errchecklite] bw.Flush returns an error that is not checked",
		"fixture.go:71:2: [errchecklite] f.Close returns an error that is not checked",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "\n"); n != 6 {
		t.Errorf("got %d findings, want exactly 6:\n%s", n, out)
	}
}

func TestCleanFixturePasses(t *testing.T) {
	code, out, _ := runLint(t, "-C", fixture("clean"), "./...")
	if code != 0 || out != "" {
		t.Fatalf("exit = %d, output = %q; want 0 and empty", code, out)
	}
}

func TestChecksSubset(t *testing.T) {
	// The errchecklite fixture is dirty for errchecklite but clean for
	// stdlibonly, so -checks decides the exit status.
	code, out, _ := runLint(t, "-C", fixture("errchecklite"), "-checks", "stdlibonly", "./...")
	if code != 0 || out != "" {
		t.Fatalf("-checks stdlibonly: exit = %d, output = %q; want 0 and empty", code, out)
	}
	code, out, _ = runLint(t, "-C", fixture("errchecklite"), "-checks", "stdlibonly,errchecklite", "./...")
	if code != 1 || !strings.Contains(out, "[errchecklite]") {
		t.Fatalf("-checks stdlibonly,errchecklite: exit = %d, output = %q; want findings", code, out)
	}
}

func TestUnknownCheckIsUsageError(t *testing.T) {
	code, _, errOut := runLint(t, "-checks", "nosuchcheck", "./...")
	if code != 2 || !strings.Contains(errOut, "unknown check") {
		t.Fatalf("exit = %d, stderr = %q; want 2 with explanation", code, errOut)
	}
}

func TestJSONOutput(t *testing.T) {
	code, out, _ := runLint(t, "-C", fixture("errchecklite"), "-json", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var report struct {
		SchemaVersion int `json:"schema_version"`
		Findings      []struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Column  int    `json:"column"`
			Check   string `json:"check"`
			Message string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if report.SchemaVersion != 1 {
		t.Fatalf("schema_version = %d, want 1", report.SchemaVersion)
	}
	if len(report.Findings) != 6 {
		t.Fatalf("got %d findings, want 6: %+v", len(report.Findings), report.Findings)
	}
	f := report.Findings[0]
	if f.File != "fixture.go" || f.Line != 20 || f.Check != "errchecklite" || !strings.Contains(f.Message, "mayFail") {
		t.Errorf("unexpected first finding %+v", f)
	}
	// Determinism: findings are sorted by position, so two runs byte-match.
	code2, out2, _ := runLint(t, "-C", fixture("errchecklite"), "-json", "./...")
	if code2 != code || out2 != out {
		t.Errorf("JSON output is not deterministic across runs")
	}
}

func TestSuppressionEndToEnd(t *testing.T) {
	code, out, _ := runLint(t, "-C", fixture("ignore"), "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	// The fixture seeds five os.Remove findings; two are suppressed by
	// valid //lint:ignore directives.
	if n := strings.Count(out, "[errchecklite]"); n != 3 {
		t.Errorf("got %d surviving findings, want 3:\n%s", n, out)
	}
	if strings.Contains(out, "fixture.go:11:") || strings.Contains(out, "fixture.go:16:") {
		t.Errorf("suppressed lines leaked into output:\n%s", out)
	}
}

func TestListChecks(t *testing.T) {
	code, out, _ := runLint(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"stdlibonly", "atomicconsistency", "mutexdiscipline", "ctxpropagation", "enumexhaustive", "errchecklite", "allocfree", "refbalance", "lockorder", "goroleak"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}

// TestRepositoryIsClean is the acceptance bar: the full suite over the
// whole module must produce zero findings. If this fails, either fix the
// finding or suppress it with a justified //lint:ignore.
func TestRepositoryIsClean(t *testing.T) {
	code, out, errOut := runLint(t, "-C", filepath.Join("..", ".."), "./...")
	if code != 0 {
		t.Fatalf("cscelint is not clean on the repository (exit %d):\n%s%s", code, out, errOut)
	}
}

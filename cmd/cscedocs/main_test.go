package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestCollectFlags pins the scanner against the fixture command: both
// value-returning and Var-style registrations are found, nothing else.
func TestCollectFlags(t *testing.T) {
	flags, err := collectFlags(filepath.Join("testdata", "negative", "cmd", "fake"))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"addr", "graph", "undocumented"}
	if len(flags) != len(want) {
		t.Fatalf("collected %v, want %v", flags, want)
	}
	for i := range want {
		if flags[i] != want[i] {
			t.Fatalf("collected %v, want %v", flags, want)
		}
	}
}

// TestDocumentedTokenBoundaries pins the whole-token matching rule that
// keeps one flag's mention from masking another's absence.
func TestDocumentedTokenBoundaries(t *testing.T) {
	for _, tc := range []struct {
		doc, name string
		want      bool
	}{
		{"use -addr here", "addr", true},
		{"`-addr`", "addr", true},
		{"(-addr)", "addr", true},
		{"-addr", "addr", true},
		{"-dataset only", "data", false},
		{"-fsync-interval only", "fsync", false},
		{"run-time prose", "time", false},
		{"--addr GNU style", "addr", false},
		{"nothing", "addr", false},
	} {
		if got := documented(tc.doc, tc.name); got != tc.want {
			t.Errorf("documented(%q, %q) = %v, want %v", tc.doc, tc.name, got, tc.want)
		}
	}
}

// TestNegativeFixtureFails is the gate's own gate: a command with an
// undocumented flag must fail the run with that flag named, and the two
// documented flags must not be reported.
func TestNegativeFixtureFails(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{
		"-root", filepath.Join("testdata", "negative"),
		"-cmds", "cmd/fake",
		"-docs", "README.md",
	}, &stdout, &stderr)
	if code == 0 {
		t.Fatalf("undocumented flag must fail the check; stdout:\n%s", stdout.String())
	}
	out := stderr.String()
	if !strings.Contains(out, "flag -undocumented is not documented") {
		t.Fatalf("missing flag not named:\n%s", out)
	}
	if strings.Contains(out, "-addr") || strings.Contains(out, "-graph") {
		t.Fatalf("documented flags reported as missing:\n%s", out)
	}
}

// TestRepoDocsComplete runs the real check from the test: every flag of
// csced, cscematch, and cscebenchserve is documented in README.md or
// OPERATIONS.md. This is the same assertion `make docscheck` enforces in
// CI; failing here means a flag was added or renamed without updating the
// operator docs.
func TestRepoDocsComplete(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-root", filepath.Join("..", "..")}, &stdout, &stderr); code != 0 {
		t.Fatalf("repo docs incomplete (exit %d):\n%s", code, stderr.String())
	}
}

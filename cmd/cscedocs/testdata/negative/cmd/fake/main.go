// Package main is a docscheck fixture: it defines three flags, and the
// fixture README documents only two of them (-addr and -graph), so the
// checker must report -undocumented and exit non-zero.
package main

import (
	"flag"
	"os"
)

func main() {
	fs := flag.NewFlagSet("fake", flag.ContinueOnError)
	var graphs flagList
	_ = fs.String("addr", ":8080", "listen address")
	fs.Var(&graphs, "graph", "name=path, repeatable")
	_ = fs.Int("undocumented", 0, "this flag is missing from the fixture docs")
	_ = fs.Parse(os.Args[1:])
}

type flagList []string

func (l *flagList) String() string     { return "" }
func (l *flagList) Set(s string) error { *l = append(*l, s); return nil }

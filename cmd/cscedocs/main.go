// Command cscedocs is the flag/documentation drift gate behind `make
// docscheck`: every flag the user-facing binaries define must be
// documented. It parses the command sources (go/ast, stdlib only) for
// flag registrations on the conventional `fs` FlagSet and requires each
// collected name to appear as `-name` somewhere in the doc set (README.md
// or OPERATIONS.md). A flag that exists in the binary but not in the docs
// — or a renamed flag whose old spelling lingers only in prose — fails CI
// with the exact list, so the operator handbook cannot silently rot.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cscedocs", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		root = fs.String("root", ".", "repository root to scan")
		cmds = fs.String("cmds", "cmd/csced,cmd/cscematch,cmd/cscebenchserve",
			"comma-separated command directories whose flags must be documented")
		docs = fs.String("docs", "README.md,OPERATIONS.md",
			"comma-separated doc files (relative to -root) that together must mention every flag")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var docText strings.Builder
	for _, name := range strings.Split(*docs, ",") {
		data, err := os.ReadFile(filepath.Join(*root, name))
		if err != nil {
			fmt.Fprintf(stderr, "cscedocs: %v\n", err)
			return 1
		}
		docText.Write(data)
		docText.WriteByte('\n')
	}

	failed := false
	for _, dir := range strings.Split(*cmds, ",") {
		flags, err := collectFlags(filepath.Join(*root, dir))
		if err != nil {
			fmt.Fprintf(stderr, "cscedocs: %s: %v\n", dir, err)
			return 1
		}
		if len(flags) == 0 {
			fmt.Fprintf(stderr, "cscedocs: %s: no flag registrations found (is the scanner stale?)\n", dir)
			failed = true
			continue
		}
		missing := missingFlags(flags, docText.String())
		for _, name := range missing {
			fmt.Fprintf(stderr, "cscedocs: %s: flag -%s is not documented in %s\n", dir, name, *docs)
		}
		if len(missing) > 0 {
			failed = true
		} else {
			fmt.Fprintf(stdout, "cscedocs: %s: %d flags documented\n", dir, len(flags))
		}
	}
	if failed {
		return 1
	}
	return 0
}

// flagMethods maps the flag.FlagSet registration methods to the argument
// position of the flag-name string literal.
var flagMethods = map[string]int{
	"Bool": 0, "Duration": 0, "Float64": 0, "Int": 0, "Int64": 0,
	"String": 0, "Uint": 0, "Uint64": 0, "Var": 1,
	"BoolVar": 1, "DurationVar": 1, "Float64Var": 1, "IntVar": 1,
	"Int64Var": 1, "StringVar": 1, "UintVar": 1, "Uint64Var": 1,
}

// collectFlags parses every non-test Go file in dir and returns the
// sorted, deduplicated flag names registered on a receiver named `fs` or
// the `flag` package itself — the convention all csce commands follow.
func collectFlags(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				argPos, ok := flagMethods[sel.Sel.Name]
				if !ok || len(call.Args) <= argPos {
					return true
				}
				recv, ok := sel.X.(*ast.Ident)
				if !ok || (recv.Name != "fs" && recv.Name != "flag") {
					return true
				}
				lit, ok := call.Args[argPos].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				if name, err := strconv.Unquote(lit.Value); err == nil && name != "" {
					seen[name] = true
				}
				return true
			})
		}
	}
	flags := make([]string, 0, len(seen))
	for name := range seen {
		flags = append(flags, name)
	}
	sort.Strings(flags)
	return flags, nil
}

// missingFlags returns the flags with no `-name` mention in the doc text.
func missingFlags(flags []string, docText string) []string {
	var missing []string
	for _, name := range flags {
		if !documented(docText, name) {
			missing = append(missing, name)
		}
	}
	return missing
}

// documented reports whether doc mentions `-name` as a standalone flag
// token: the character before the dash and after the name must not extend
// the word, so `-data` is not satisfied by `-dataset` and `-fsync` is not
// satisfied by `-fsync-interval`.
func documented(doc, name string) bool {
	target := "-" + name
	for i := 0; ; {
		j := strings.Index(doc[i:], target)
		if j < 0 {
			return false
		}
		j += i
		end := j + len(target)
		if (j == 0 || !wordByte(doc[j-1])) && (end == len(doc) || !wordByte(doc[end])) {
			return true
		}
		i = j + 1
	}
}

// wordByte reports whether b would extend a flag-name token.
func wordByte(b byte) bool {
	return b == '-' || b == '_' ||
		('0' <= b && b <= '9') || ('a' <= b && b <= 'z') || ('A' <= b && b <= 'Z')
}

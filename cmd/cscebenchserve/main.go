// Command cscebenchserve measures the serving stack under concurrent
// load: the same data graph is driven once as a single-store live graph
// (one writer lock for every mutation batch) and once as a K-shard
// scatter-gather coordinator (one writer per shard), with W writer
// goroutines applying shard-confined insert/delete batches while a reader
// goroutine runs pattern matches the whole time. It reports mutation
// throughput and match latency quantiles for both setups and writes the
// comparison to BENCH_serve.json.
//
//	cscebenchserve -out BENCH_serve.json
//	cscebenchserve -shards 4 -writers 4 -rounds 150 -check
//
// -check exits non-zero unless the sharded mutation throughput is at
// least -want-speedup times the single-store number — the regression gate
// behind `make bench-serve`.
//
// -mode prefilter switches to the admission pre-filter workload: a mix of
// label-impossible, cluster-impossible, and degree-impossible patterns is
// fired at a live-mutating sharded coordinator, and the report
// (BENCH_prefilter.json behind `make bench-prefilter`) carries the
// reject-path latency quantiles, the reject ratio over the impossible
// workload (-check gates on -want-reject), and the per-filter breakdown.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"csce/internal/ccsr"
	"csce/internal/core"
	"csce/internal/graph"
	"csce/internal/live"
	"csce/internal/shard"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "cscebenchserve: %v\n", err)
		os.Exit(1)
	}
}

type config struct {
	Vertices int `json:"vertices"`
	Degree   int `json:"avg_degree"`
	Labels   int `json:"vertex_labels"`
	Shards   int `json:"shards"`
	Writers  int `json:"writers"`
	Rounds   int `json:"rounds"`
	Batch    int `json:"batch"`
	Seed     int `json:"seed"`
	MaxProcs int `json:"gomaxprocs"`
}

// sideReport is one setup's measurements.
type sideReport struct {
	Mutations       int     `json:"mutations"`
	MutationSeconds float64 `json:"mutation_seconds"`
	MutationsPerSec float64 `json:"mutations_per_sec"`
	Matches         int     `json:"matches"`
	MatchP50Ms      float64 `json:"match_p50_ms"`
	MatchP99Ms      float64 `json:"match_p99_ms"`
	Embeddings      uint64  `json:"embeddings"`
}

type report struct {
	Config  config     `json:"config"`
	Single  sideReport `json:"single_store"`
	Sharded sideReport `json:"sharded"`
	Speedup float64    `json:"mutation_speedup"`
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cscebenchserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out     = fs.String("out", "BENCH_serve.json", "output file (\"-\" writes to stdout)")
		mode    = fs.String("mode", "serve", "workload: serve (mutation/match comparison) or prefilter (impossible-query admission)")
		wantRej = fs.Float64("want-reject", 0.9, "minimum impossible-query reject ratio for -check under -mode prefilter")
		shards  = fs.Int("shards", 4, "shard count for the sharded side")
		writers = fs.Int("writers", 4, "concurrent mutation clients")
		rounds  = fs.Int("rounds", 120, "insert+delete rounds per writer")
		batch   = fs.Int("batch", 32, "edges per insert (and per delete) batch")
		n       = fs.Int("vertices", 12000, "data-graph vertices")
		degree  = fs.Int("degree", 3, "data-graph average degree")
		labels  = fs.Int("labels", 8, "data-graph vertex labels")
		seed    = fs.Int("seed", 42, "data-graph seed")
		check   = fs.Bool("check", false, "fail unless sharded mutation throughput beats single-store by -want-speedup")
		wantX   = fs.Float64("want-speedup", 2.0, "minimum sharded/single mutation-throughput ratio for -check")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *writers < 1 || *shards < 1 || *rounds < 1 || *batch < 1 {
		return fmt.Errorf("writers, shards, rounds, batch must all be >= 1")
	}
	if *writers > *shards {
		// Each writer owns the ID stripe of one shard so its batches never
		// collide with another writer's; more writers than stripes would
		// race on duplicate inserts.
		return fmt.Errorf("writers (%d) must not exceed shards (%d)", *writers, *shards)
	}

	cfg := config{
		Vertices: *n, Degree: *degree, Labels: *labels, Shards: *shards,
		Writers: *writers, Rounds: *rounds, Batch: *batch, Seed: *seed,
		MaxProcs: runtime.GOMAXPROCS(0),
	}
	switch *mode {
	case "serve":
	case "prefilter":
		return runPrefilter(cfg, *out, *check, *wantRej, stdout)
	default:
		return fmt.Errorf("unknown -mode %q (serve, prefilter)", *mode)
	}
	g := buildGraph(cfg)
	fmt.Fprintf(stdout, "cscebenchserve: graph %d vertices / %d edges, %d writers x %d rounds x %d edges\n",
		g.NumVertices(), g.NumEdges(), cfg.Writers, cfg.Rounds, cfg.Batch)

	ctx := context.Background()
	single, err := benchSingle(ctx, g, cfg)
	if err != nil {
		return fmt.Errorf("single-store side: %w", err)
	}
	fmt.Fprintf(stdout, "cscebenchserve: single-store %.0f mutations/s, match p50 %.2fms p99 %.2fms\n",
		single.MutationsPerSec, single.MatchP50Ms, single.MatchP99Ms)

	sharded, err := benchSharded(ctx, g, cfg)
	if err != nil {
		return fmt.Errorf("sharded side: %w", err)
	}
	fmt.Fprintf(stdout, "cscebenchserve: sharded(K=%d) %.0f mutations/s, match p50 %.2fms p99 %.2fms\n",
		cfg.Shards, sharded.MutationsPerSec, sharded.MatchP50Ms, sharded.MatchP99Ms)

	rep := report{Config: cfg, Single: single, Sharded: sharded}
	if single.MutationsPerSec > 0 {
		rep.Speedup = sharded.MutationsPerSec / single.MutationsPerSec
	}
	fmt.Fprintf(stdout, "cscebenchserve: sharded mutation throughput %.2fx single-store\n", rep.Speedup)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "-" {
		_, err = stdout.Write(buf)
	} else {
		err = os.WriteFile(*out, buf, 0o644)
	}
	if err != nil {
		return err
	}
	if *check && rep.Speedup < *wantX {
		return fmt.Errorf("sharded mutation throughput %.2fx single-store, want >= %.2fx", rep.Speedup, *wantX)
	}
	return nil
}

// buildGraph makes a connected random graph: a ring plus random chords,
// labels assigned round-robin. All base edges use edge label 0; the bench
// writers mutate edges with label 1 so they never collide with base data.
func buildGraph(cfg config) *graph.Graph {
	rng := rand.New(rand.NewSource(int64(cfg.Seed)))
	b := graph.NewBuilder(false)
	for i := 0; i < cfg.Vertices; i++ {
		b.AddVertex(graph.Label(i % cfg.Labels))
	}
	for i := 0; i < cfg.Vertices; i++ {
		b.AddEdge(graph.VertexID(i), graph.VertexID((i+1)%cfg.Vertices), 0)
	}
	extra := cfg.Vertices * (cfg.Degree - 2) / 2
	seen := make(map[[2]int]bool, extra)
	for len(seen) < extra {
		u, v := rng.Intn(cfg.Vertices), rng.Intn(cfg.Vertices)
		if u > v {
			u, v = v, u
		}
		if u == v || v == u+1 || (u == 0 && v == cfg.Vertices-1) || seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		b.AddEdge(graph.VertexID(u), graph.VertexID(v), 0)
	}
	return b.MustBuild()
}

// writerBatches precomputes writer w's per-round insert batches. Every
// endpoint is congruent to w modulo the shard count, so under SchemeID
// each batch lands entirely on shard w mod K — the workload K shards can
// absorb in parallel and a single store must serialize.
func writerBatches(cfg config, w int) [][]live.Mutation {
	stripe := make([]graph.VertexID, 0, cfg.Vertices/cfg.Shards)
	for v := w % cfg.Shards; v < cfg.Vertices; v += cfg.Shards {
		stripe = append(stripe, graph.VertexID(v))
	}
	m := len(stripe)
	out := make([][]live.Mutation, cfg.Rounds)
	for r := 0; r < cfg.Rounds; r++ {
		muts := make([]live.Mutation, 0, cfg.Batch)
		for i := 0; len(muts) < cfg.Batch; i++ {
			src := stripe[i%m]
			dst := stripe[(i+r+1)%m]
			if src == dst {
				continue
			}
			muts = append(muts, live.Mutation{Op: live.OpInsertEdge, Src: src, Dst: dst, EdgeLabel: 1})
		}
		out[r] = muts
	}
	return out
}

// deletesFor inverts one insert batch.
func deletesFor(inserts []live.Mutation) []live.Mutation {
	out := make([]live.Mutation, len(inserts))
	for i, m := range inserts {
		out[i] = live.Mutation{Op: live.OpDeleteEdge, Src: m.Src, Dst: m.Dst, EdgeLabel: m.EdgeLabel}
	}
	return out
}

// applyFn applies one mutation batch; matchFn runs one triangle match and
// returns how many embeddings it saw.
type (
	applyFn func(ctx context.Context, muts []live.Mutation) error
	matchFn func(ctx context.Context) (uint64, error)
)

// drive runs the shared workload: cfg.Writers goroutines each applying
// their insert/delete rounds through apply, while one reader loops match
// until the writers finish. It returns the measurements.
func drive(ctx context.Context, cfg config, apply applyFn, match matchFn) (sideReport, error) {
	var rep sideReport
	batches := make([][][]live.Mutation, cfg.Writers)
	for w := range batches {
		batches[w] = writerBatches(cfg, w)
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	writersDone := make(chan struct{})
	var matchDurs []time.Duration
	var embeddings uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-writersDone:
				return
			case <-ctx.Done():
				return
			default:
			}
			t0 := time.Now()
			n, err := match(ctx)
			if err != nil {
				fail(fmt.Errorf("match: %w", err))
				return
			}
			matchDurs = append(matchDurs, time.Since(t0))
			embeddings += n
		}
	}()

	start := time.Now()
	var wwg sync.WaitGroup
	for w := 0; w < cfg.Writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			for _, ins := range batches[w] {
				if ctx.Err() != nil {
					return
				}
				if err := apply(ctx, ins); err != nil {
					fail(fmt.Errorf("writer %d insert: %w", w, err))
					return
				}
				if err := apply(ctx, deletesFor(ins)); err != nil {
					fail(fmt.Errorf("writer %d delete: %w", w, err))
					return
				}
			}
		}(w)
	}
	wwg.Wait()
	elapsed := time.Since(start)
	close(writersDone)
	wg.Wait()
	if firstErr != nil {
		return rep, firstErr
	}

	total := 0
	for w := range batches {
		for _, ins := range batches[w] {
			total += 2 * len(ins)
		}
	}
	rep.Mutations = total
	rep.MutationSeconds = elapsed.Seconds()
	rep.MutationsPerSec = float64(total) / elapsed.Seconds()
	rep.Matches = len(matchDurs)
	rep.MatchP50Ms = quantileMs(matchDurs, 0.50)
	rep.MatchP99Ms = quantileMs(matchDurs, 0.99)
	rep.Embeddings = embeddings
	return rep, nil
}

var triangle = graph.MustParse("t undirected\nv 0 0\nv 1 0\nv 2 0\ne 0 1\ne 1 2\ne 0 2\n")

func benchSingle(ctx context.Context, g *graph.Graph, cfg config) (sideReport, error) {
	lg, err := live.Open("bench-single", core.NewEngine(g), live.Options{})
	if err != nil {
		return sideReport{}, err
	}
	defer lg.Close()
	return drive(ctx, cfg,
		func(ctx context.Context, muts []live.Mutation) error {
			_, err := lg.Mutate(ctx, muts)
			return err
		},
		func(ctx context.Context) (uint64, error) {
			snap := lg.Acquire()
			defer snap.Release()
			res, err := snap.Engine().Match(triangle, core.MatchOptions{
				Variant: graph.EdgeInduced, Limit: 2000, Context: ctx,
			})
			if err != nil {
				return 0, err
			}
			return res.Embeddings, nil
		})
}

func benchSharded(ctx context.Context, g *graph.Graph, cfg config) (sideReport, error) {
	coord, err := shard.Open("bench-sharded", ccsr.Build(g), shard.Options{K: cfg.Shards, Scheme: shard.SchemeID})
	if err != nil {
		return sideReport{}, err
	}
	defer coord.Close()
	return drive(ctx, cfg,
		func(ctx context.Context, muts []live.Mutation) error {
			_, err := coord.Mutate(ctx, muts)
			return err
		},
		func(ctx context.Context) (uint64, error) {
			res, err := coord.Match(ctx, triangle, shard.MatchOptions{
				Variant: graph.EdgeInduced, Limit: 2000,
			})
			if err != nil {
				return 0, err
			}
			return res.Embeddings, nil
		})
}

func quantileMs(durs []time.Duration, q float64) float64 {
	if len(durs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"csce/internal/ccsr"
	"csce/internal/graph"
	"csce/internal/shard"
)

// prefilterReport is the -mode prefilter output (BENCH_prefilter.json):
// how much of the impossible workload the admission cascade rejected, how
// fast the reject path is against a live-mutating sharded graph, and how
// the rejects split across the cascade.
type prefilterReport struct {
	Config          config         `json:"config"`
	Queries         int            `json:"queries"`
	Impossible      int            `json:"impossible_queries"`
	Rejected        int            `json:"rejected"`
	RejectRatio     float64        `json:"reject_ratio"`
	RejectP50Us     float64        `json:"reject_p50_us"`
	RejectP99Us     float64        `json:"reject_p99_us"`
	AdmittedP50Ms   float64        `json:"admitted_match_p50_ms"`
	RejectsByFilter map[string]int `json:"rejects_by_filter"`
	Mutations       int            `json:"mutations"`
}

// impossiblePatterns builds queries no embedding can satisfy against
// buildGraph's output, each aimed at a different cascade depth: a label
// that is never minted, an edge label no cluster carries, and a hub degree
// beyond any data vertex.
func impossiblePatterns(cfg config) []*graph.Graph {
	var out []*graph.Graph

	// nbr-label: vertex label cfg.Labels is one past the round-robin range.
	b := graph.NewBuilder(false)
	b.AddVertex(0)
	b.AddVertex(graph.Label(cfg.Labels))
	b.AddEdge(0, 1, 0)
	out = append(out, b.MustBuild())

	// label-pair: labels 0 and 1 are adjacent on the ring, but never via
	// edge label 2 (base data uses 0, the bench writers use 1).
	b = graph.NewBuilder(false)
	b.AddVertex(0)
	b.AddVertex(1)
	b.AddEdge(0, 1, 2)
	out = append(out, b.MustBuild())

	// degree: a 64-star far beyond the ring-plus-chords maximum degree.
	b = graph.NewBuilder(false)
	b.AddVertex(0)
	for i := 0; i < 64; i++ {
		b.AddVertex(graph.Label(i % cfg.Labels))
		b.AddEdge(0, graph.VertexID(i+1), 0)
	}
	out = append(out, b.MustBuild())

	return out
}

// runPrefilter drives the admission workload: per round one mutation batch
// commits (so signatures are checked mid-ingest), then every impossible
// pattern and one satisfiable triangle run through Coordinator.Match.
func runPrefilter(cfg config, out string, check bool, wantReject float64, stdout io.Writer) error {
	g := buildGraph(cfg)
	fmt.Fprintf(stdout, "cscebenchserve: prefilter workload, graph %d vertices / %d edges, K=%d\n",
		g.NumVertices(), g.NumEdges(), cfg.Shards)
	coord, err := shard.Open("bench-prefilter", ccsr.Build(g), shard.Options{K: cfg.Shards, Scheme: shard.SchemeID})
	if err != nil {
		return err
	}
	defer coord.Close()

	ctx := context.Background()
	impossible := impossiblePatterns(cfg)
	batches := writerBatches(cfg, 0)
	rep := prefilterReport{Config: cfg, RejectsByFilter: make(map[string]int)}
	var rejectDurs, admitDurs []time.Duration

	for r := 0; r < cfg.Rounds; r++ {
		// Alternate insert and delete so the graph keeps moving but never
		// drifts: signatures are probed against a different epoch each round.
		muts := batches[r%len(batches)]
		if r%2 == 1 {
			muts = deletesFor(batches[(r-1)%len(batches)])
		}
		if _, err := coord.Mutate(ctx, muts); err != nil {
			return fmt.Errorf("round %d mutate: %w", r, err)
		}
		rep.Mutations += len(muts)

		for _, p := range impossible {
			t0 := time.Now()
			res, err := coord.Match(ctx, p, shard.MatchOptions{Variant: graph.EdgeInduced, Limit: 100})
			d := time.Since(t0)
			if err != nil {
				return fmt.Errorf("round %d impossible match: %w", r, err)
			}
			rep.Queries++
			rep.Impossible++
			if res.Embeddings != 0 {
				return fmt.Errorf("round %d: impossible pattern matched %d times (workload bug)", r, res.Embeddings)
			}
			if res.RejectedBy != "" {
				rep.Rejected++
				rep.RejectsByFilter[string(res.RejectedBy)]++
				rejectDurs = append(rejectDurs, d)
			}
		}

		t0 := time.Now()
		if _, err := coord.Match(ctx, triangle, shard.MatchOptions{Variant: graph.EdgeInduced, Limit: 100}); err != nil {
			return fmt.Errorf("round %d triangle match: %w", r, err)
		}
		admitDurs = append(admitDurs, time.Since(t0))
		rep.Queries++
	}

	rep.RejectRatio = float64(rep.Rejected) / float64(rep.Impossible)
	rep.RejectP50Us = quantileMs(rejectDurs, 0.50) * 1e3
	rep.RejectP99Us = quantileMs(rejectDurs, 0.99) * 1e3
	rep.AdmittedP50Ms = quantileMs(admitDurs, 0.50)
	fmt.Fprintf(stdout, "cscebenchserve: %d/%d impossible queries rejected (%.0f%%), reject p50 %.1fµs p99 %.1fµs, admitted match p50 %.2fms\n",
		rep.Rejected, rep.Impossible, rep.RejectRatio*100, rep.RejectP50Us, rep.RejectP99Us, rep.AdmittedP50Ms)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "-" {
		_, err = stdout.Write(buf)
	} else {
		err = os.WriteFile(out, buf, 0o644)
	}
	if err != nil {
		return err
	}
	if check && rep.RejectRatio < wantReject {
		return fmt.Errorf("reject ratio %.2f, want >= %.2f", rep.RejectRatio, wantReject)
	}
	return nil
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestBenchServeSmoke runs a miniature benchmark end to end and checks the
// report file is well formed. Throughput numbers are not asserted here —
// the CI box is too noisy for that; `make bench-serve -check` is the
// opt-in gate.
func TestBenchServeSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-out", out,
		"-vertices", "400", "-degree", "3", "-labels", "4",
		"-shards", "4", "-writers", "4", "-rounds", "3", "-batch", "8",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("bad report JSON: %v\n%s", err, raw)
	}
	wantMuts := 4 * 3 * 8 * 2 // writers * rounds * batch * (insert+delete)
	if rep.Single.Mutations != wantMuts || rep.Sharded.Mutations != wantMuts {
		t.Fatalf("mutation counts %d/%d, want %d", rep.Single.Mutations, rep.Sharded.Mutations, wantMuts)
	}
	if rep.Single.MutationsPerSec <= 0 || rep.Sharded.MutationsPerSec <= 0 {
		t.Fatalf("throughput not measured: %+v", rep)
	}
	// Both sides enumerate the same data, so the triangle counts per match
	// agree whenever a match ran on the quiescent graph; just require the
	// reader actually ran.
	if rep.Single.Matches < 1 || rep.Sharded.Matches < 1 {
		t.Fatalf("reader never ran: %+v", rep)
	}
}

func TestBenchServeRejectsBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-writers", "8", "-shards", "4"}, &stdout, &stderr); err == nil {
		t.Fatal("writers > shards should be rejected")
	}
	if err := run([]string{"-rounds", "0"}, &stdout, &stderr); err == nil {
		t.Fatal("rounds=0 should be rejected")
	}
}

// Command cscebench regenerates the paper's evaluation artifacts: one
// experiment per table and figure of Section VII (see DESIGN.md for the
// per-experiment index).
//
//	cscebench -list
//	cscebench -exp fig6
//	cscebench -exp all -timelimit 5s -patterns 5
//	cscebench -exp fig10 -quick
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"csce/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "cscebench: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cscebench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list      = fs.Bool("list", false, "list experiments and exit")
		expID     = fs.String("exp", "", "experiment to run, or \"all\"")
		timeLimit = fs.Duration("timelimit", 2*time.Second, "per-task time limit")
		patterns  = fs.Int("patterns", 3, "patterns per configuration (paper uses 10)")
		quick     = fs.Bool("quick", false, "reduced sizes for a fast smoke run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Fprintf(stdout, "%-10s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *expID == "" {
		return fmt.Errorf("pass -exp <id> or -exp all (see -list)")
	}
	cfg := bench.Config{
		Out:               stdout,
		TimeLimit:         *timeLimit,
		PatternsPerConfig: *patterns,
		Quick:             *quick,
	}
	runOne := func(e bench.Experiment) error {
		fmt.Fprintf(stdout, "\n#### %s — %s\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(cfg); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintf(stdout, "## %s done in %v\n", e.ID, time.Since(start).Round(time.Millisecond))
		return nil
	}
	if *expID == "all" {
		for _, e := range bench.All() {
			if err := runOne(e); err != nil {
				return err
			}
		}
		return nil
	}
	e, ok := bench.ByID(*expID)
	if !ok {
		return fmt.Errorf("unknown experiment %q", *expID)
	}
	return runOne(e)
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-list"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"table3", "fig6", "casestudy"} {
		if !strings.Contains(out.String(), id) {
			t.Fatalf("-list missing %s:\n%s", id, out.String())
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-exp", "table3", "-quick", "-timelimit", "100ms", "-patterns", "1"}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table III") {
		t.Fatalf("experiment output missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "done in") {
		t.Fatal("timing footer missing")
	}
}

func TestErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{}, &out, &errOut); err == nil {
		t.Fatal("missing -exp must error")
	}
	if err := run([]string{"-exp", "nope"}, &out, &errOut); err == nil {
		t.Fatal("unknown experiment must error")
	}
	if err := run([]string{"-bogus"}, &out, &errOut); err == nil {
		t.Fatal("unknown flag must error")
	}
}

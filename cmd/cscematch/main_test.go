package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const testData = `t undirected
v 0 A
v 1 A
v 2 A
v 3 B
e 0 1
e 1 2
e 0 2
e 2 3
`

const testPattern = `t undirected
v 0 A
v 1 A
v 2 A
e 0 1
e 1 2
e 0 2
`

func writeFiles(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	data := filepath.Join(dir, "data.graph")
	pattern := filepath.Join(dir, "pattern.graph")
	if err := os.WriteFile(data, []byte(testData), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pattern, []byte(testPattern), 0o644); err != nil {
		t.Fatal(err)
	}
	return data, pattern
}

func TestMatchPatternFile(t *testing.T) {
	data, pattern := writeFiles(t)
	var out, errOut bytes.Buffer
	if err := run([]string{"-data", data, "-pattern", pattern, "-print", "-plan"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	// One triangle, 6 automorphic mappings.
	if !strings.Contains(out.String(), "embeddings: 6") {
		t.Fatalf("output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "plan[") {
		t.Fatal("-plan output missing")
	}
	if strings.Count(out.String(), "u0->") != 6 {
		t.Fatal("-print must list all 6 mappings")
	}
}

func TestMatchQuery(t *testing.T) {
	data, _ := writeFiles(t)
	var out, errOut bytes.Buffer
	err := run([]string{"-data", data, "-query", "MATCH (x:A)--(y:A)--(z:A), (x)--(z)", "-print"}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "embeddings: 6") {
		t.Fatalf("query output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "x->v") {
		t.Fatal("query variable names missing from -print output")
	}
}

func TestMatchSymmetryBreaking(t *testing.T) {
	data, pattern := writeFiles(t)
	var out, errOut bytes.Buffer
	if err := run([]string{"-data", data, "-pattern", pattern, "-symbreak"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "embeddings: 1") ||
		!strings.Contains(out.String(), "automorphisms: 6") {
		t.Fatalf("symbreak output:\n%s", out.String())
	}
}

func TestSaveAndLoadIndex(t *testing.T) {
	data, pattern := writeFiles(t)
	idx := filepath.Join(t.TempDir(), "data.ccsr")
	var out, errOut bytes.Buffer
	if err := run([]string{"-data", data, "-save-index", idx}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote") {
		t.Fatal("save-index output missing")
	}
	out.Reset()
	if err := run([]string{"-index", idx, "-pattern", pattern}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "embeddings: 6") {
		t.Fatalf("index-backed match output:\n%s", out.String())
	}
}

func TestWorkersFlag(t *testing.T) {
	data, pattern := writeFiles(t)
	var out, errOut bytes.Buffer
	if err := run([]string{"-data", data, "-pattern", pattern, "-workers", "3"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "embeddings: 6") {
		t.Fatalf("parallel output:\n%s", out.String())
	}
}

func TestMatchErrors(t *testing.T) {
	data, pattern := writeFiles(t)
	var out, errOut bytes.Buffer
	cases := [][]string{
		{},              // no data
		{"-data", data}, // no pattern
		{"-data", data, "-pattern", pattern, "-variant", "bogus"},
		{"-data", data, "-pattern", pattern, "-mode", "bogus"},
		{"-data", "/nonexistent", "-pattern", pattern},
		{"-data", data, "-query", "MATCH ("},
	}
	for _, args := range cases {
		if err := run(args, &out, &errOut); err == nil {
			t.Fatalf("args %v must error", args)
		}
	}
}

func TestProfileAndDotFlags(t *testing.T) {
	data, pattern := writeFiles(t)
	var out, errOut bytes.Buffer
	if err := run([]string{"-data", data, "-pattern", pattern, "-profile", "-dot"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "digraph H {") {
		t.Fatal("-dot output missing")
	}
	if !strings.Contains(out.String(), "builds") {
		t.Fatal("-profile output missing")
	}
}

func TestTimeoutCancelsSearch(t *testing.T) {
	// A clique-6 pattern in K40 has ~2.8e9 mappings; only cancellation can
	// end the run quickly. -timeout goes through the same context path the
	// csced daemon uses for per-query deadlines.
	dir := t.TempDir()
	var data, pattern strings.Builder
	data.WriteString("t undirected\n")
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&data, "v %d A\n", i)
	}
	for i := 0; i < 40; i++ {
		for j := i + 1; j < 40; j++ {
			fmt.Fprintf(&data, "e %d %d\n", i, j)
		}
	}
	pattern.WriteString("t undirected\n")
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&pattern, "v %d A\n", i)
	}
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			fmt.Fprintf(&pattern, "e %d %d\n", i, j)
		}
	}
	dataPath := filepath.Join(dir, "k40.graph")
	patternPath := filepath.Join(dir, "k6.graph")
	if err := os.WriteFile(dataPath, []byte(data.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(patternPath, []byte(pattern.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errOut bytes.Buffer
	start := time.Now()
	err := run([]string{"-data", dataPath, "-pattern", patternPath, "-timeout", "50ms", "-workers", "2"}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("-timeout did not stop the search (took %v)", elapsed)
	}
	if !strings.Contains(out.String(), "search cancelled") {
		t.Fatalf("missing cancellation notice:\n%s", out.String())
	}
}

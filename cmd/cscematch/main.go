// Command cscematch finds all embeddings of a pattern in a data graph
// with the CSCE engine.
//
//	cscematch -data yeast.graph -pattern yeast-d8-0.graph -variant edge
//	cscematch -data social.graph -query "MATCH (a:Person)-[:knows]->(b:Person)"
//
// Flags select the matching variant (edge, vertex, homo), a plan-mode
// ablation, limits, parallel workers, and whether to print individual
// embeddings or the optimized plan. The clustered index can be cached on
// disk across runs:
//
//	cscematch -data big.graph -save-index big.ccsr
//	cscematch -index big.ccsr -pattern p.graph
//
// The index stores the original graph's label table, so patterns (and
// -query) parsed against a loaded index intern label names exactly as the
// direct -data path does.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"csce"
	"csce/internal/graph"
	"csce/internal/query"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "cscematch: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cscematch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dataPath    = fs.String("data", "", "data graph file")
		indexPath   = fs.String("index", "", "pre-built CCSR index file (alternative to -data)")
		saveIndex   = fs.String("save-index", "", "write the clustered index here and exit")
		patternPath = fs.String("pattern", "", "pattern graph file")
		queryText   = fs.String("query", "", "MATCH query instead of a pattern file")
		variantName = fs.String("variant", "edge", "matching variant: edge, vertex, homo")
		modeName    = fs.String("mode", "csce", "plan mode: csce, ri, ri+cluster, rm, cost")
		limit       = fs.Uint64("limit", 0, "stop after this many embeddings (0 = all)")
		timeLimit   = fs.Duration("time", 0, "execution time limit (0 = none)")
		timeout     = fs.Duration("timeout", 0, "overall deadline via cooperative cancellation; Ctrl-C also cancels (0 = none)")
		workers     = fs.Int("workers", 1, "parallel workers for execution")
		printAll    = fs.Bool("print", false, "print each embedding")
		symBreak    = fs.Bool("symbreak", false, "apply symmetry breaking (count instances, not mappings)")
		showPlan    = fs.Bool("plan", false, "print the optimized plan")
		showProfile = fs.Bool("profile", false, "print the per-level execution profile")
		showDot     = fs.Bool("dot", false, "print the dependency DAG in Graphviz format")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var engine *csce.Engine
	var data *csce.Graph
	switch {
	case *dataPath != "":
		f, err := os.Open(*dataPath)
		if err != nil {
			return err
		}
		data, err = csce.ParseGraph(f)
		_ = f.Close()
		if err != nil {
			return fmt.Errorf("parse data graph: %w", err)
		}
		engine = csce.NewEngine(data)
	case *indexPath != "":
		f, err := os.Open(*indexPath)
		if err != nil {
			return err
		}
		var err2 error
		engine, err2 = csce.LoadEngine(f)
		_ = f.Close()
		if err2 != nil {
			return fmt.Errorf("load index: %w", err2)
		}
	default:
		return fmt.Errorf("pass -data or -index")
	}

	if *saveIndex != "" {
		f, err := os.Create(*saveIndex)
		if err != nil {
			return err
		}
		if err := engine.Save(f); err != nil {
			_ = f.Close()
			return fmt.Errorf("save index: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("save index: %w", err)
		}
		fmt.Fprintf(stdout, "wrote %s (%d clusters)\n", *saveIndex, engine.Store().NumClusters())
		return nil
	}

	// Parse the pattern with the data graph's label table so equal names
	// mean equal labels. A loaded index carries the table too; only legacy
	// (version-1) index files lack it, in which case a fresh table is the
	// best available.
	names := engine.Names()
	if names == nil {
		names = graph.NewLabelTable()
	}
	var p *csce.Graph
	var varNames []string
	switch {
	case *queryText != "":
		if data == nil && engine.Names() == nil {
			return fmt.Errorf("-query needs -data or an index with a label table (re-save with a current build)")
		}
		q, err := query.Parse(*queryText, names, engine.Store().Directed())
		if err != nil {
			return err
		}
		p = q.Pattern
		varNames = q.Vars
	case *patternPath != "":
		pf, err := os.Open(*patternPath)
		if err != nil {
			return err
		}
		p, err = graph.ParseWith(pf, names)
		_ = pf.Close()
		if err != nil {
			return fmt.Errorf("parse pattern: %w", err)
		}
	default:
		return fmt.Errorf("pass -pattern or -query")
	}

	variant, err := parseVariant(*variantName)
	if err != nil {
		return err
	}
	mode, err := parseMode(*modeName)
	if err != nil {
		return err
	}
	opts := csce.MatchOptions{
		Variant:          variant,
		Mode:             mode,
		Limit:            *limit,
		TimeLimit:        *timeLimit,
		Workers:          *workers,
		SymmetryBreaking: *symBreak,
		Profile:          *showProfile,
	}
	// Cooperative cancellation: the same code path the csced daemon uses
	// for per-query timeouts and client disconnects. Ctrl-C stops the
	// search gracefully and still prints the partial counts.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts.Context = ctx
	if *printAll {
		opts.OnEmbedding = func(m []graph.VertexID) bool {
			for u, v := range m {
				if u > 0 {
					fmt.Fprint(stdout, " ")
				}
				if varNames != nil {
					fmt.Fprintf(stdout, "%s->v%d", varNames[u], v)
				} else {
					fmt.Fprintf(stdout, "u%d->v%d", u, v)
				}
			}
			fmt.Fprintln(stdout)
			return true
		}
	}
	start := time.Now()
	res, err := engine.Match(p, opts)
	if err != nil {
		return fmt.Errorf("match: %w", err)
	}
	if *showPlan {
		fmt.Fprintln(stdout, res.Plan)
	}
	if *showDot {
		fmt.Fprint(stdout, res.Plan.DOT())
	}
	if *showProfile && res.Profile != nil {
		fmt.Fprint(stdout, res.Profile)
	}
	fmt.Fprintf(stdout, "embeddings: %d\n", res.Embeddings)
	if res.Automorphisms > 0 {
		fmt.Fprintf(stdout, "automorphisms: %d (counts are instances)\n", res.Automorphisms)
	}
	fmt.Fprintf(stdout, "time: total=%v read=%v plan=%v exec=%v (wall %v)\n",
		res.Total(), res.ReadTime, res.PlanTime, res.ExecTime, time.Since(start))
	fmt.Fprintf(stdout, "clusters read: %d (%.2f MB decompressed)\n",
		res.ClustersRead, float64(res.ViewBytes)/1e6)
	fmt.Fprintf(stdout, "exec: steps=%d candidate builds=%d reuses=%d nec-shares=%d factorized=%d timedout=%v\n",
		res.Exec.Steps, res.Exec.CandidateBuilds, res.Exec.CandidateReuses,
		res.Exec.NECShares, res.Exec.FactorizedLevels, res.Exec.TimedOut)
	if res.Exec.Cancelled {
		fmt.Fprintln(stdout, "search cancelled (timeout or interrupt); counts are partial")
	}
	return nil
}

func parseVariant(s string) (csce.Variant, error) {
	switch s {
	case "edge", "edge-induced", "e":
		return csce.EdgeInduced, nil
	case "vertex", "vertex-induced", "v", "induced":
		return csce.VertexInduced, nil
	case "homo", "homomorphic", "h":
		return csce.Homomorphic, nil
	}
	return 0, fmt.Errorf("unknown variant %q (edge, vertex, homo)", s)
}

func parseMode(s string) (csce.PlanMode, error) {
	switch s {
	case "csce":
		return csce.PlanCSCE, nil
	case "ri":
		return csce.PlanRI, nil
	case "ri+cluster":
		return csce.PlanRICluster, nil
	case "rm":
		return csce.PlanRM, nil
	case "cost", "costbased":
		return csce.PlanCostBased, nil
	}
	return 0, fmt.Errorf("unknown plan mode %q (csce, ri, ri+cluster, rm, cost)", s)
}

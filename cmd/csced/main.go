// Command csced is the CSCE match-serving daemon: it loads one or more
// data graphs, clusters each into CCSR form once, and serves concurrent
// subgraph-matching queries over HTTP until shut down.
//
//	csced -graph yeast=yeast.graph -addr :8372
//	csced -dataset wordnet            # synthetic stand-in from the catalog
//
//	curl -X POST --data-binary @pattern.graph \
//	  'localhost:8372/v1/graphs/yeast/match?limit=100&timeout_ms=2000'
//	curl localhost:8372/v1/graphs
//	curl localhost:8372/metrics
//
// Responses to /match stream one NDJSON line per embedding followed by a
// summary line. Every query runs under a deadline; disconnecting cancels
// the search. SIGINT/SIGTERM drain in-flight queries before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"csce"
	"csce/internal/dataset"
	"csce/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		fmt.Fprintf(os.Stderr, "csced: %v\n", err)
		os.Exit(1)
	}
}

// repeatFlag collects repeated -graph/-dataset values.
type repeatFlag []string

func (f *repeatFlag) String() string     { return strings.Join(*f, ",") }
func (f *repeatFlag) Set(v string) error { *f = append(*f, v); return nil }

// run starts the daemon and blocks until ctx is cancelled. When started is
// non-nil it receives the bound address once the listener is live (tests).
func run(ctx context.Context, args []string, stdout, stderr io.Writer, started chan<- string) error {
	fs := flag.NewFlagSet("csced", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graphs   repeatFlag
		datasets repeatFlag
		addr     = fs.String("addr", "127.0.0.1:8372", "listen address (\":0\" picks a free port)")
		slots    = fs.Int("slots", 4, "concurrently executing matches")
		queue    = fs.Int("queue", 0, "queries waiting for a slot before 429 (default 2*slots)")
		maxLimit = fs.Uint64("max-limit", 10000, "hard cap on embeddings streamed per query")
		defTO    = fs.Duration("default-timeout", 5*time.Second, "per-query timeout when timeout_ms is absent")
		maxTO    = fs.Duration("max-timeout", 60*time.Second, "cap on per-query timeout_ms")
		planLRU  = fs.Int("plan-cache", 256, "optimized-plan LRU size (negative disables)")
		workers  = fs.Int("exec-workers", 4, "cap on the per-query workers parameter")
		drainTO  = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	)
	fs.Var(&graphs, "graph", "name=path of a data graph to serve (repeatable)")
	fs.Var(&datasets, "dataset", "synthetic dataset from the catalog to serve (repeatable); see cmd/cscegen")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(graphs) == 0 && len(datasets) == 0 {
		return fmt.Errorf("nothing to serve: pass at least one -graph name=path or -dataset name")
	}

	srv := server.New(server.Config{
		Addr:           *addr,
		MatchSlots:     *slots,
		QueueDepth:     *queue,
		MaxLimit:       *maxLimit,
		DefaultTimeout: *defTO,
		MaxTimeout:     *maxTO,
		PlanCacheSize:  *planLRU,
		MaxExecWorkers: *workers,
	})

	for _, spec := range graphs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("bad -graph %q: want name=path", spec)
		}
		if err := loadGraphFile(srv, name, path, stdout); err != nil {
			return err
		}
	}
	for _, name := range datasets {
		spec, ok := dataset.ByName(name)
		if !ok {
			return fmt.Errorf("unknown dataset %q (known: %s)", name, strings.Join(dataset.Names(), ", "))
		}
		start := time.Now()
		g := spec.Generate()
		if g.Names == nil {
			g.Names = server.NumericLabels(g)
		}
		engine := csce.NewEngine(g)
		if _, err := srv.Registry().Add(name, engine); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "csced: dataset %s: %d vertices, %d edges, %d clusters (generated+clustered in %v)\n",
			name, g.NumVertices(), g.NumEdges(), engine.Store().NumClusters(), time.Since(start).Round(time.Millisecond))
	}

	bound, err := srv.Start()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "csced: serving %d graph(s) on http://%s\n", srv.Registry().Len(), bound)
	if started != nil {
		started <- bound
	}

	<-ctx.Done()
	fmt.Fprintf(stdout, "csced: draining (up to %v)...\n", *drainTO)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(stdout, "csced: bye")
	return nil
}

func loadGraphFile(srv *server.Server, name, path string, stdout io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	start := time.Now()
	g, err := csce.ParseGraph(f)
	if err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	engine := csce.NewEngine(g)
	if _, err := srv.Registry().Add(name, engine); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "csced: graph %s (%s): %d vertices, %d edges, %d clusters (loaded+clustered in %v)\n",
		name, path, g.NumVertices(), g.NumEdges(), engine.Store().NumClusters(), time.Since(start).Round(time.Millisecond))
	return nil
}

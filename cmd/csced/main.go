// Command csced is the CSCE match-serving daemon: it loads one or more
// data graphs, clusters each into CCSR form once, and serves concurrent
// subgraph-matching queries over HTTP until shut down.
//
//	csced -graph yeast=yeast.graph -addr :8372
//	csced -dataset wordnet            # synthetic stand-in from the catalog
//
//	curl -X POST --data-binary @pattern.graph \
//	  'localhost:8372/v1/graphs/yeast/match?limit=100&timeout_ms=2000'
//	curl -X POST -d '{"mutations":[{"op":"insert_edge","src":0,"dst":7}]}' \
//	  localhost:8372/v1/graphs/yeast/mutate
//	curl 'localhost:8372/v1/graphs/yeast/subscribe?pattern=...'
//	curl localhost:8372/v1/graphs
//	curl localhost:8372/metrics
//
// Responses to /match stream one NDJSON line per embedding followed by a
// summary line. Every query runs under a deadline; disconnecting cancels
// the search. SIGINT/SIGTERM drain in-flight queries before exit.
//
// Graphs are live: /mutate applies an atomic batch of typed mutations and
// publishes a new immutable snapshot (in-flight queries finish on the one
// they pinned), and /subscribe streams the delta embeddings (and, for
// deletions, retractions) each commit contributes to a standing pattern.
// Mutations are admitted through their own valve
// (-mutate-slots/-mutate-queue) so a mutation storm cannot starve reads.
//
// Durability: with -wal-dir set, every committed batch is appended to a
// per-graph segment log (fsynced per -fsync) before it is acknowledged,
// and a restart replays checkpoint + log to reopen each graph at its exact
// pre-crash seq and epoch. Disconnected subscribers resume gapless with
// /subscribe?from_seq=N; history already truncated answers 410 Gone.
//
// Sharding: -shards=K partitions every loaded graph into K label- or
// ID-range shards (pick with -shard-scheme), each with its own store, WAL
// directory, and mutation applier, behind a scatter-gather coordinator
// that decomposes patterns into rooted twigs and joins per-shard partial
// embeddings. Graphs can also be loaded at runtime, sharded or not, with
// POST /v1/graphs/{name}?shards=K.
//
// Observability: every query carries a trace ID (X-Trace-Id header, NDJSON
// summary, structured log lines on stderr); /metrics exposes latency
// quantiles per query phase and endpoint plus runtime gauges (goroutines,
// heap, GC pause, polled every -runtime-stats); /debug/slowlog holds the
// most recent queries slower than -slow-query with their plan summary and
// per-level execution profile, each linked to /debug/trace/{id} where the
// full span tree of the last -trace-ring queries is retained; -debug-addr
// serves net/http/pprof on a separate (private) listener.
//
// Trace export: with -trace-endpoint set, every finished query trace is
// shipped asynchronously to a collector as OTLP/JSON (-trace-export=otlp,
// POST /v1/traces) or Zipkin v2 JSON (-trace-export=zipkin, POST
// /api/v2/spans). The queue is bounded (-trace-queue): a stalled collector
// costs dropped traces (counted in csce_trace_export_dropped), never query
// latency. On shutdown the queue is drained after the HTTP listener, so no
// tail spans are lost.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"csce"
	"csce/internal/dataset"
	"csce/internal/live"
	"csce/internal/obs/export"
	"csce/internal/server"
	"csce/internal/shard"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		fmt.Fprintf(os.Stderr, "csced: %v\n", err)
		os.Exit(1)
	}
}

// repeatFlag collects repeated -graph/-dataset values.
type repeatFlag []string

func (f *repeatFlag) String() string     { return strings.Join(*f, ",") }
func (f *repeatFlag) Set(v string) error { *f = append(*f, v); return nil }

// run starts the daemon and blocks until ctx is cancelled. When started is
// non-nil it receives the bound address once the listener is live (tests).
func run(ctx context.Context, args []string, stdout, stderr io.Writer, started chan<- string) error {
	fs := flag.NewFlagSet("csced", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graphs   repeatFlag
		datasets repeatFlag
		addr     = fs.String("addr", "127.0.0.1:8372", "listen address (\":0\" picks a free port)")
		slots    = fs.Int("slots", 4, "concurrently executing matches")
		queue    = fs.Int("queue", 0, "queries waiting for a slot before 429 (default 2*slots)")
		maxLimit = fs.Uint64("max-limit", 10000, "hard cap on embeddings streamed per query")
		defTO    = fs.Duration("default-timeout", 5*time.Second, "per-query timeout when timeout_ms is absent")
		maxTO    = fs.Duration("max-timeout", 60*time.Second, "cap on per-query timeout_ms")
		planLRU  = fs.Int("plan-cache", 256, "optimized-plan LRU size (negative disables)")
		workers  = fs.Int("exec-workers", 4, "cap on the per-query workers parameter")
		drainTO  = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
		slowTO   = fs.Duration("slow-query", 500*time.Millisecond, "capture queries at least this slow in /debug/slowlog (negative disables)")
		slowCap  = fs.Int("slowlog-size", 128, "slow-query ring-buffer capacity")
		mutSlots = fs.Int("mutate-slots", 1, "concurrently applying mutation batches")
		mutQueue = fs.Int("mutate-queue", 0, "mutation batches waiting for a slot before 429 (default 4*mutate-slots)")
		maxBatch = fs.Int("max-batch", 4096, "mutations accepted per /mutate batch")
		subBuf   = fs.Int("sub-buffer", 256, "per-subscriber event buffer; overflowing it drops the subscriber")
		walKeep  = fs.Int("wal-retention", 4096, "mutation records retained per graph for subscriber resume")
		walDir   = fs.String("wal-dir", "", "root directory for durable per-graph WALs (empty keeps graphs in-memory only)")
		fsyncPol = fs.String("fsync", "always", "durable-WAL fsync policy: always, interval, never")
		fsyncIv  = fs.Duration("fsync-interval", 100*time.Millisecond, "flush cadence under -fsync interval")
		segSize  = fs.Int64("segment-size", 4<<20, "durable-WAL segment rotation threshold in bytes")
		segKeep  = fs.Int("wal-keep-segments", 4, "sealed segments kept before a checkpoint truncates the log")
		ckMode   = fs.String("checkpoint-mode", "full", "checkpoint strategy: full (serialize the store) or incremental (chain covered segments)")
		debugAdr = fs.String("debug-addr", "", "serve net/http/pprof on this address (empty disables; keep it private)")
		logLevel = fs.String("log-level", "info", "structured-log level on stderr (debug, info, warn, error, off)")
		shardsN  = fs.Int("shards", 0, "partition every loaded graph into K shards behind a scatter-gather coordinator (0 serves single-store)")
		shardSch = fs.String("shard-scheme", "id", "vertex->shard assignment for -shards: id (v mod K) or label")
		traceFmt = fs.String("trace-export", "otlp", "span export wire format: otlp (OTLP/JSON) or zipkin (Zipkin v2 JSON)")
		traceEP  = fs.String("trace-endpoint", "", "collector URL to POST finished traces to, e.g. http://localhost:4318/v1/traces (empty disables export)")
		traceQ   = fs.Int("trace-queue", 4096, "bounded export queue; a full queue drops traces instead of blocking queries")
		traceRg  = fs.Int("trace-ring", 256, "completed traces retained for /debug/trace/{id} (negative disables)")
		rtStats  = fs.Duration("runtime-stats", 10*time.Second, "runtime/metrics polling interval for goroutine/heap/GC gauges (negative disables)")
		preFlt   = fs.String("prefilter", "on", "O(pattern) admission pre-filters: on rejects provably-empty queries before planning, off disables the gate (signatures stay maintained)")
	)
	fs.Var(&graphs, "graph", "name=path of a data graph to serve (repeatable)")
	fs.Var(&datasets, "dataset", "synthetic dataset from the catalog to serve (repeatable); see cmd/cscegen")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(graphs) == 0 && len(datasets) == 0 {
		return fmt.Errorf("nothing to serve: pass at least one -graph name=path or -dataset name")
	}
	logger, err := newLogger(*logLevel, stderr)
	if err != nil {
		return err
	}
	fsync, err := live.ParseFsyncPolicy(*fsyncPol)
	if err != nil {
		return err
	}
	ckpt, err := live.ParseCheckpointMode(*ckMode)
	if err != nil {
		return err
	}
	if *shardsN < 0 || *shardsN > 1024 {
		return fmt.Errorf("bad -shards %d (0..1024)", *shardsN)
	}
	scheme, err := shard.ParseScheme(*shardSch)
	if err != nil {
		return err
	}
	switch *preFlt {
	case "on", "off":
	default:
		return fmt.Errorf("bad -prefilter %q (on or off)", *preFlt)
	}
	var exporter *export.Exporter
	if *traceEP != "" {
		format, err := export.ParseFormat(*traceFmt)
		if err != nil {
			return err
		}
		exporter, err = export.New(export.Config{
			Endpoint:  *traceEP,
			Format:    format,
			QueueSize: *traceQ,
			Logger:    logger,
		})
		if err != nil {
			return err
		}
	}

	srv := server.New(server.Config{
		Addr:                 *addr,
		MatchSlots:           *slots,
		QueueDepth:           *queue,
		MaxLimit:             *maxLimit,
		DefaultTimeout:       *defTO,
		MaxTimeout:           *maxTO,
		PlanCacheSize:        *planLRU,
		MaxExecWorkers:       *workers,
		SlowQueryThreshold:   *slowTO,
		SlowLogSize:          *slowCap,
		MutateSlots:          *mutSlots,
		MutateQueueDepth:     *mutQueue,
		MaxMutationsPerBatch: *maxBatch,
		SubscriberBuffer:     *subBuf,
		WALRetention:         *walKeep,
		WALDir:               *walDir,
		WALFsync:             fsync,
		WALFsyncInterval:     *fsyncIv,
		WALSegmentSize:       *segSize,
		WALKeepSegments:      *segKeep,
		WALCheckpointMode:    ckpt,
		Logger:               logger,
		TraceExporter:        exporter,
		TraceRingSize:        *traceRg,
		RuntimeStatsInterval: *rtStats,
		DisablePrefilter:     *preFlt == "off",
	})

	for _, spec := range graphs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("bad -graph %q: want name=path", spec)
		}
		if err := loadGraphFile(srv, name, path, *shardsN, scheme, stdout); err != nil {
			return err
		}
	}
	for _, name := range datasets {
		spec, ok := dataset.ByName(name)
		if !ok {
			return fmt.Errorf("unknown dataset %q (known: %s)", name, strings.Join(dataset.Names(), ", "))
		}
		start := time.Now()
		g := spec.Generate()
		if g.Names == nil {
			g.Names = server.NumericLabels(g)
		}
		engine := csce.NewEngine(g)
		if err := register(srv, name, engine, *shardsN, scheme); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "csced: dataset %s: %d vertices, %d edges, %d clusters%s (generated+clustered in %v)\n",
			name, g.NumVertices(), g.NumEdges(), engine.Store().NumClusters(),
			shardSuffix(*shardsN, scheme), time.Since(start).Round(time.Millisecond))
	}

	if *walDir != "" {
		for _, e := range srv.Registry().List() {
			if e.Live == nil {
				// Sharded graphs recover per shard; the coordinator already
				// reconciled any shard that lagged the others.
				fmt.Fprintf(stdout, "csced: wal %s: recovered %d shards at epochs %v\n",
					e.Name, e.Sharded.K(), e.Sharded.EpochVector())
				continue
			}
			rec := e.Live.Recovery()
			fmt.Fprintf(stdout, "csced: wal %s: recovered seq=%d epoch=%d (checkpoint=%v chain=%d replayed=%d torn_tail=%v resume=%v resume_oldest=%d in %v)\n",
				e.Name, rec.RecoveredSeq, rec.RecoveredEpoch, rec.HasCheckpoint, rec.ChainSegments,
				rec.ReplayedRecords, rec.TornTail, rec.ResumeWindowRestored, rec.ResumeOldestSeq,
				rec.Duration.Round(time.Microsecond))
		}
	}

	// The pprof listener is separate from the serving listener on purpose:
	// profiling endpoints leak internals and must never share the address
	// operators expose to clients.
	if *debugAdr != "" {
		debugSrv, dbound, err := startDebugServer(*debugAdr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		defer debugSrv.Close()
		fmt.Fprintf(stdout, "csced: pprof on http://%s/debug/pprof/\n", dbound)
	}

	bound, err := srv.Start()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "csced: serving %d graph(s) on http://%s\n", srv.Registry().Len(), bound)
	if started != nil {
		started <- bound
	}

	<-ctx.Done()
	fmt.Fprintf(stdout, "csced: draining (up to %v)...\n", *drainTO)
	//lint:ignore ctxpropagation ctx is already cancelled here; deriving the drain deadline from it would make it pre-expired
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(stdout, "csced: bye")
	return nil
}

// newLogger builds the daemon's structured logger at the requested level;
// "off" discards everything (the server's default).
func newLogger(level string, stderr io.Writer) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	case "off":
		return slog.New(slog.NewTextHandler(io.Discard, nil)), nil
	default:
		return nil, fmt.Errorf("bad -log-level %q (debug, info, warn, error, off)", level)
	}
	return slog.New(slog.NewTextHandler(stderr, &slog.HandlerOptions{Level: lv})), nil
}

// startDebugServer serves net/http/pprof on its own mux and listener. The
// explicit mux (rather than http.DefaultServeMux) keeps the profiling
// routes off any handler the rest of the process might export.
func startDebugServer(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}

func loadGraphFile(srv *server.Server, name, path string, shards int, scheme shard.Scheme, stdout io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	start := time.Now()
	g, err := csce.ParseGraph(f)
	if err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	engine := csce.NewEngine(g)
	if err := register(srv, name, engine, shards, scheme); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "csced: graph %s (%s): %d vertices, %d edges, %d clusters%s (loaded+clustered in %v)\n",
		name, path, g.NumVertices(), g.NumEdges(), engine.Store().NumClusters(),
		shardSuffix(shards, scheme), time.Since(start).Round(time.Millisecond))
	return nil
}

// register adds an engine to the registry, sharded behind a coordinator
// when -shards is set.
func register(srv *server.Server, name string, engine *csce.Engine, shards int, scheme shard.Scheme) error {
	var err error
	if shards > 0 {
		_, err = srv.Registry().AddSharded(name, engine, shards, scheme)
	} else {
		_, err = srv.Registry().Add(name, engine)
	}
	return err
}

func shardSuffix(shards int, scheme shard.Scheme) string {
	if shards <= 0 {
		return ""
	}
	return fmt.Sprintf(", %d shards (%s)", shards, scheme)
}

package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"
)

// daemonHelperArg re-enters the test binary as a real csced daemon: crash
// recovery needs a process that can be SIGKILLed mid-batch, which an
// in-process run() cannot simulate.
const daemonHelperArg = "crash-helper-daemon"

func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == daemonHelperArg {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		err := run(ctx, os.Args[2:], os.Stdout, os.Stderr, nil)
		stop()
		if err != nil {
			fmt.Fprintf(os.Stderr, "csced: %v\n", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// daemon is one spawned csced subprocess plus its captured stdout.
type daemon struct {
	cmd  *exec.Cmd
	addr string
	out  *lockedBuffer
}

// spawnDaemon starts the helper daemon and waits for its serving line.
func spawnDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, append([]string{daemonHelperArg}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderrBuf lockedBuffer
	cmd.Stderr = &stderrBuf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, out: &lockedBuffer{}}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			d.out.Write([]byte(line + "\n"))
			if rest, ok := strings.CutPrefix(line, "csced: serving "); ok {
				if _, a, ok := strings.Cut(rest, "on http://"); ok {
					select {
					case addrCh <- a:
					default:
					}
				}
			}
		}
	}()
	select {
	case d.addr = <-addrCh:
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatalf("daemon did not start; stdout:\n%s\nstderr:\n%s", d.out.String(), stderrBuf.String())
	}
	return d
}

func (d *daemon) base() string { return "http://" + d.addr }

// mutateBatch posts one batch and returns the acknowledged last_seq, or an
// error once the daemon has been killed.
func mutateBatch(base string, batch []map[string]any) (lastSeq uint64, err error) {
	body, _ := json.Marshal(map[string]any{"mutations": batch})
	resp, err := http.Post(base+"/v1/graphs/tiny/mutate", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("mutate status %d: %s", resp.StatusCode, raw)
	}
	var doc struct {
		LastSeq uint64 `json:"last_seq"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return 0, fmt.Errorf("parse mutate response %q: %w", raw, err)
	}
	return doc.LastSeq, nil
}

// liveStats fetches the per-graph live block from /metrics.
func liveStats(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	liveBlock, ok := m["live"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing live block: %v", m["live"])
	}
	st, ok := liveBlock["tiny"].(map[string]any)
	if !ok {
		t.Fatalf("live block missing graph tiny: %v", liveBlock)
	}
	return st
}

// TestCrashRecovery SIGKILLs a csced mid-mutation-storm and verifies a
// restart from the same -wal-dir reopens the graph at the exact committed
// seq and epoch with every acknowledged batch present: the deterministic
// storm (each batch = one new A vertex plus one edge to vertex 0) lets the
// test compute vertex, edge, and match counts from the recovered seq
// alone. This is the `make crash-race` target.
func TestCrashRecovery(t *testing.T) {
	graphPath := writeTempGraph(t)
	walDir := t.TempDir()
	args := []string{
		"-addr", "127.0.0.1:0",
		"-graph", "tiny=" + graphPath,
		"-wal-dir", walDir,
		"-fsync", "always",
		"-segment-size", "8192", // force rotation + checkpoints during the storm
		"-wal-keep-segments", "2",
		"-log-level", "off",
	}
	d1 := spawnDaemon(t, args...)

	// Storm until killed. Batch k adds vertex 4+k (label A) and the edge
	// (4+k, 0); acks record the last durable seq the client observed.
	ackCh := make(chan uint64, 1024)
	stormDone := make(chan struct{})
	go func() {
		defer close(stormDone)
		for k := 0; ; k++ {
			lastSeq, err := mutateBatch(d1.base(), []map[string]any{
				{"op": "add_vertex", "label": "A"},
				{"op": "insert_edge", "src": 4 + k, "dst": 0, "label": ""},
			})
			if err != nil {
				return // the kill landed
			}
			ackCh <- lastSeq
		}
	}()

	// Let a healthy number of batches commit, then kill without warning.
	var ackSeq uint64
	for len(ackCh) < cap(ackCh) {
		select {
		case s := <-ackCh:
			ackSeq = s
		case <-time.After(20 * time.Second):
			t.Fatal("mutation storm stalled")
		}
		if ackSeq >= 80 { // >= 40 acknowledged batches
			break
		}
	}
	if err := d1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = d1.cmd.Wait() // exits with "signal: killed"
	<-stormDone
	for {
		select {
		case s := <-ackCh:
			ackSeq = s
			continue
		default:
		}
		break
	}
	if ackSeq == 0 {
		t.Fatal("no batch was acknowledged before the kill")
	}

	// Restart from the same WAL directory.
	d2 := spawnDaemon(t, args...)
	defer func() {
		_ = d2.cmd.Process.Kill()
		_ = d2.cmd.Wait()
	}()
	if !strings.Contains(d2.out.String(), "csced: wal tiny: recovered seq=") {
		t.Fatalf("restart log lacks recovery line:\n%s", d2.out.String())
	}

	st := liveStats(t, d2.base())
	recSeq := uint64(st["last_seq"].(float64))
	recEpoch := uint64(st["epoch"].(float64))
	if recSeq < ackSeq {
		t.Fatalf("recovered seq %d lost acknowledged seq %d", recSeq, ackSeq)
	}
	if recSeq%2 != 0 {
		t.Fatalf("recovered seq %d is mid-batch (batches are 2 mutations)", recSeq)
	}
	batches := recSeq / 2
	if recEpoch != batches {
		t.Fatalf("recovered epoch %d, want %d (one epoch per committed batch)", recEpoch, batches)
	}

	// Exact counts: 4 seed vertices + one per batch; same for edges.
	resp, err := http.Get(d2.base() + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	var graphsDoc struct {
		Graphs []struct {
			Name     string `json:"name"`
			Vertices uint64 `json:"vertices"`
			Edges    uint64 `json:"edges"`
		} `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&graphsDoc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(graphsDoc.Graphs) != 1 || graphsDoc.Graphs[0].Name != "tiny" {
		t.Fatalf("unexpected graph listing: %+v", graphsDoc.Graphs)
	}
	if v := graphsDoc.Graphs[0].Vertices; v != 4+batches {
		t.Fatalf("recovered %d vertices, want %d", v, 4+batches)
	}
	if e := graphsDoc.Graphs[0].Edges; e != 4+batches {
		t.Fatalf("recovered %d edges, want %d", e, 4+batches)
	}

	// Exact match count: the seed holds 3 A–A edges (6 ordered
	// embeddings); every batch added one more A–A edge (2 embeddings).
	pattern := "t undirected\nv 0 A\nv 1 A\ne 0 1\n"
	mresp, err := http.Post(d2.base()+"/v1/graphs/tiny/match", "text/plain", strings.NewReader(pattern))
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("match status %d: %s", mresp.StatusCode, mbody)
	}
	want := 6 + 2*batches
	if got := uint64(strings.Count(string(mbody), "\n")) - 1; got != want {
		t.Fatalf("recovered graph matched %d embeddings, want %d", got, want)
	}

	// The rebuilt prefilter signature is exact for the recovered store.
	// No B–B edge ever existed, so the nbr-label filter rejects it; and
	// the storm grew vertex 0's degree to exactly batches+2, so a star
	// one past that boundary rejects while the boundary itself admits
	// and matches — off-by-one in the recovered histogram would flip one
	// of the two.
	postMatch := func(pattern string, limit int) (status int, body string) {
		t.Helper()
		r, err := http.Post(fmt.Sprintf("%s/v1/graphs/tiny/match?limit=%d", d2.base(), limit),
			"text/plain", strings.NewReader(pattern))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(r.Body)
		r.Body.Close()
		return r.StatusCode, string(raw)
	}
	star := func(leaves uint64) string {
		var sb strings.Builder
		sb.WriteString("t undirected\nv 0 A\n")
		for i := uint64(1); i <= leaves; i++ {
			fmt.Fprintf(&sb, "v %d A\n", i)
		}
		for i := uint64(1); i <= leaves; i++ {
			fmt.Fprintf(&sb, "e 0 %d\n", i)
		}
		return sb.String()
	}
	if status, body := postMatch("t undirected\nv 0 B\nv 1 B\ne 0 1\n", 10); status != http.StatusOK ||
		!strings.Contains(body, `"rejected_by":"nbr-label"`) {
		t.Fatalf("B-B pattern after recovery: status %d, body %s (want nbr-label reject)", status, body)
	}
	if status, body := postMatch(star(batches+3), 10); status != http.StatusOK ||
		!strings.Contains(body, `"rejected_by":"degree"`) {
		t.Fatalf("degree-%d star after recovery: status %d, body %s (want degree reject)", batches+3, status, body)
	}
	if status, body := postMatch(star(batches+2), 1); status != http.StatusOK ||
		strings.Contains(body, `"rejected_by"`) || !strings.Contains(body, `"embeddings":1`) {
		t.Fatalf("degree-%d star after recovery: status %d, body %s (want admitted with 1 embedding)", batches+2, status, body)
	}

	// The log keeps extending gapless: the next batch must be assigned
	// seq recSeq+1 on the recovered daemon.
	lastSeq, err := mutateBatch(d2.base(), []map[string]any{
		{"op": "add_vertex", "label": "A"},
		{"op": "insert_edge", "src": 4 + int(batches), "dst": 0, "label": ""},
	})
	if err != nil {
		t.Fatal(err)
	}
	if lastSeq != recSeq+2 {
		t.Fatalf("post-recovery batch ended at seq %d, want %d", lastSeq, recSeq+2)
	}
}

// subEvent is one parsed NDJSON subscription line.
type subEvent struct {
	Kind     string `json:"kind"`
	Seq      uint64 `json:"seq"`
	CaughtUp bool   `json:"caught_up"`
}

// TestCrashResumeSubscription SIGKILLs csced while a subscriber is
// streaming and proves the restart is transparent to it: the persisted
// resume log lets the subscriber resume from its last received commit on
// the restarted process, and the ledger it accumulates across BOTH
// processes satisfies count = before + Σdeltas − Σretractions against the
// recovered graph. The storm toggles one A–A edge so retractions are a
// first-class part of the equation, and runs under -checkpoint-mode
// incremental so the drill also recovers through a base + chain + tail.
func TestCrashResumeSubscription(t *testing.T) {
	graphPath := writeTempGraph(t)
	walDir := t.TempDir()
	args := []string{
		"-addr", "127.0.0.1:0",
		"-graph", "tiny=" + graphPath,
		"-wal-dir", walDir,
		"-fsync", "always",
		"-segment-size", "8192",
		"-wal-keep-segments", "2",
		"-checkpoint-mode", "incremental",
		"-log-level", "off",
	}
	d1 := spawnDaemon(t, args...)

	// The seed holds 3 A–A edges = 6 ordered embeddings; the subscriber
	// joins before any mutation, so its baseline is exactly that.
	const before = uint64(6)
	pattern := "t undirected\nv 0 A\nv 1 A\ne 0 1\n"
	subResp, err := http.Get(d1.base() + "/v1/graphs/tiny/subscribe?pattern=" +
		url.QueryEscape(pattern) + "&from_seq=0")
	if err != nil {
		t.Fatal(err)
	}
	defer subResp.Body.Close()
	if subResp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status %d", subResp.StatusCode)
	}

	// The subscriber ledger: only fully delivered batches count. sum is
	// the running Σdeltas − Σretractions; the pair (lastCommit,
	// sumAtCommit) freezes the ledger at the last commit marker that made
	// it through before the kill, discarding any torn batch suffix — the
	// resume below replays that batch in full.
	type ledger struct {
		lastCommit  uint64
		sumAtCommit int64
	}
	ledgerCh := make(chan ledger, 1)
	go func() {
		sc := bufio.NewScanner(subResp.Body)
		sc.Buffer(make([]byte, 1<<16), 1<<22)
		var led ledger
		var sum int64
		first := true
		for sc.Scan() {
			if first {
				first = false // hello line
				continue
			}
			var ev subEvent
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				break // torn line at the kill
			}
			switch ev.Kind {
			case "delta":
				sum++
			case "retract":
				sum--
			case "commit":
				led.lastCommit = ev.Seq
				led.sumAtCommit = sum
			}
		}
		ledgerCh <- led
	}()

	// Storm: batch 1 mints vertex 4 (label A), then batch k toggles the
	// A–A edge (4,0) — inserts on even seqs, deletes on odd — so every
	// batch after the first streams two deltas or two retractions.
	ackCh := make(chan uint64, 1024)
	stormDone := make(chan struct{})
	go func() {
		defer close(stormDone)
		if _, err := mutateBatch(d1.base(), []map[string]any{{"op": "add_vertex", "label": "A"}}); err != nil {
			return
		}
		for k := 2; ; k++ {
			op := "insert_edge"
			if k%2 == 1 {
				op = "delete_edge"
			}
			lastSeq, err := mutateBatch(d1.base(), []map[string]any{
				{"op": op, "src": 4, "dst": 0, "label": ""},
			})
			if err != nil {
				return // the kill landed
			}
			ackCh <- lastSeq
		}
	}()

	var ackSeq uint64
	for ackSeq < 40 {
		select {
		case s := <-ackCh:
			ackSeq = s
		case <-time.After(20 * time.Second):
			t.Fatal("mutation storm stalled")
		}
	}
	if err := d1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = d1.cmd.Wait()
	<-stormDone
	subResp.Body.Close() // unblock the subscriber goroutine's scanner
	var led ledger
	select {
	case led = <-ledgerCh:
	case <-time.After(10 * time.Second):
		t.Fatal("subscriber did not observe the kill")
	}
	if led.lastCommit == 0 {
		t.Fatal("no commit marker reached the subscriber before the kill")
	}

	// Restart: the recovery line must report the restored resume window.
	d2 := spawnDaemon(t, args...)
	defer func() {
		_ = d2.cmd.Process.Kill()
		_ = d2.cmd.Wait()
	}()
	if out := d2.out.String(); !strings.Contains(out, "resume=true") {
		t.Fatalf("restart log lacks resume=true:\n%s", out)
	}
	st := liveStats(t, d2.base())
	recSeq := uint64(st["last_seq"].(float64))
	if recSeq < ackSeq {
		t.Fatalf("recovered seq %d lost acknowledged seq %d", recSeq, ackSeq)
	}
	if oldest := uint64(st["oldest_resumable_seq"].(float64)); oldest > led.lastCommit {
		t.Fatalf("restored window starts at %d, past the subscriber's commit %d", oldest, led.lastCommit)
	}

	// Resume on the restarted daemon from the subscriber's last commit and
	// drain the replay to caught_up, extending the same ledger.
	resumeResp, err := http.Get(d2.base() + "/v1/graphs/tiny/subscribe?pattern=" +
		url.QueryEscape(pattern) + fmt.Sprintf("&from_seq=%d", led.lastCommit))
	if err != nil {
		t.Fatal(err)
	}
	defer resumeResp.Body.Close()
	if resumeResp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resumeResp.Body)
		t.Fatalf("resume subscribe status %d: %s", resumeResp.StatusCode, raw)
	}
	sc := bufio.NewScanner(resumeResp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	sum := led.sumAtCommit
	prevCommit := led.lastCommit
	first := true
	for {
		if !sc.Scan() {
			t.Fatalf("resumed stream ended before caught_up: %v", sc.Err())
		}
		if first {
			first = false // hello line
			continue
		}
		var ev subEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad resumed line %q: %v", sc.Text(), err)
		}
		if ev.CaughtUp {
			break
		}
		switch ev.Kind {
		case "delta":
			sum++
		case "retract":
			sum--
		case "commit":
			if ev.Seq != prevCommit+1 {
				t.Fatalf("resumed commits not gapless: seq %d after %d", ev.Seq, prevCommit)
			}
			prevCommit = ev.Seq
		}
	}
	if prevCommit != recSeq {
		t.Fatalf("resumed replay ended at commit %d, want recovered seq %d", prevCommit, recSeq)
	}

	// The delta equation across the crash: the recovered graph's match
	// count equals the baseline plus the ledger both processes streamed.
	mresp, err := http.Post(d2.base()+"/v1/graphs/tiny/match", "text/plain", strings.NewReader(pattern))
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("match status %d: %s", mresp.StatusCode, mbody)
	}
	count := uint64(strings.Count(string(mbody), "\n")) - 1
	if int64(count) != int64(before)+sum {
		t.Fatalf("count %d != before %d + Σdeltas−Σretractions %d", count, before, sum)
	}
}

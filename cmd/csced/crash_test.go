package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"
)

// daemonHelperArg re-enters the test binary as a real csced daemon: crash
// recovery needs a process that can be SIGKILLed mid-batch, which an
// in-process run() cannot simulate.
const daemonHelperArg = "crash-helper-daemon"

func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == daemonHelperArg {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		err := run(ctx, os.Args[2:], os.Stdout, os.Stderr, nil)
		stop()
		if err != nil {
			fmt.Fprintf(os.Stderr, "csced: %v\n", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// daemon is one spawned csced subprocess plus its captured stdout.
type daemon struct {
	cmd  *exec.Cmd
	addr string
	out  *lockedBuffer
}

// spawnDaemon starts the helper daemon and waits for its serving line.
func spawnDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, append([]string{daemonHelperArg}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderrBuf lockedBuffer
	cmd.Stderr = &stderrBuf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, out: &lockedBuffer{}}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			d.out.Write([]byte(line + "\n"))
			if rest, ok := strings.CutPrefix(line, "csced: serving "); ok {
				if _, a, ok := strings.Cut(rest, "on http://"); ok {
					select {
					case addrCh <- a:
					default:
					}
				}
			}
		}
	}()
	select {
	case d.addr = <-addrCh:
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatalf("daemon did not start; stdout:\n%s\nstderr:\n%s", d.out.String(), stderrBuf.String())
	}
	return d
}

func (d *daemon) base() string { return "http://" + d.addr }

// mutateBatch posts one batch and returns the acknowledged last_seq, or an
// error once the daemon has been killed.
func mutateBatch(base string, batch []map[string]any) (lastSeq uint64, err error) {
	body, _ := json.Marshal(map[string]any{"mutations": batch})
	resp, err := http.Post(base+"/v1/graphs/tiny/mutate", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("mutate status %d: %s", resp.StatusCode, raw)
	}
	var doc struct {
		LastSeq uint64 `json:"last_seq"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return 0, fmt.Errorf("parse mutate response %q: %w", raw, err)
	}
	return doc.LastSeq, nil
}

// liveStats fetches the per-graph live block from /metrics.
func liveStats(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	liveBlock, ok := m["live"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing live block: %v", m["live"])
	}
	st, ok := liveBlock["tiny"].(map[string]any)
	if !ok {
		t.Fatalf("live block missing graph tiny: %v", liveBlock)
	}
	return st
}

// TestCrashRecovery SIGKILLs a csced mid-mutation-storm and verifies a
// restart from the same -wal-dir reopens the graph at the exact committed
// seq and epoch with every acknowledged batch present: the deterministic
// storm (each batch = one new A vertex plus one edge to vertex 0) lets the
// test compute vertex, edge, and match counts from the recovered seq
// alone. This is the `make crash-race` target.
func TestCrashRecovery(t *testing.T) {
	graphPath := writeTempGraph(t)
	walDir := t.TempDir()
	args := []string{
		"-addr", "127.0.0.1:0",
		"-graph", "tiny=" + graphPath,
		"-wal-dir", walDir,
		"-fsync", "always",
		"-segment-size", "8192", // force rotation + checkpoints during the storm
		"-wal-keep-segments", "2",
		"-log-level", "off",
	}
	d1 := spawnDaemon(t, args...)

	// Storm until killed. Batch k adds vertex 4+k (label A) and the edge
	// (4+k, 0); acks record the last durable seq the client observed.
	ackCh := make(chan uint64, 1024)
	stormDone := make(chan struct{})
	go func() {
		defer close(stormDone)
		for k := 0; ; k++ {
			lastSeq, err := mutateBatch(d1.base(), []map[string]any{
				{"op": "add_vertex", "label": "A"},
				{"op": "insert_edge", "src": 4 + k, "dst": 0, "label": ""},
			})
			if err != nil {
				return // the kill landed
			}
			ackCh <- lastSeq
		}
	}()

	// Let a healthy number of batches commit, then kill without warning.
	var ackSeq uint64
	for len(ackCh) < cap(ackCh) {
		select {
		case s := <-ackCh:
			ackSeq = s
		case <-time.After(20 * time.Second):
			t.Fatal("mutation storm stalled")
		}
		if ackSeq >= 80 { // >= 40 acknowledged batches
			break
		}
	}
	if err := d1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = d1.cmd.Wait() // exits with "signal: killed"
	<-stormDone
	for {
		select {
		case s := <-ackCh:
			ackSeq = s
			continue
		default:
		}
		break
	}
	if ackSeq == 0 {
		t.Fatal("no batch was acknowledged before the kill")
	}

	// Restart from the same WAL directory.
	d2 := spawnDaemon(t, args...)
	defer func() {
		_ = d2.cmd.Process.Kill()
		_ = d2.cmd.Wait()
	}()
	if !strings.Contains(d2.out.String(), "csced: wal tiny: recovered seq=") {
		t.Fatalf("restart log lacks recovery line:\n%s", d2.out.String())
	}

	st := liveStats(t, d2.base())
	recSeq := uint64(st["last_seq"].(float64))
	recEpoch := uint64(st["epoch"].(float64))
	if recSeq < ackSeq {
		t.Fatalf("recovered seq %d lost acknowledged seq %d", recSeq, ackSeq)
	}
	if recSeq%2 != 0 {
		t.Fatalf("recovered seq %d is mid-batch (batches are 2 mutations)", recSeq)
	}
	batches := recSeq / 2
	if recEpoch != batches {
		t.Fatalf("recovered epoch %d, want %d (one epoch per committed batch)", recEpoch, batches)
	}

	// Exact counts: 4 seed vertices + one per batch; same for edges.
	resp, err := http.Get(d2.base() + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	var graphsDoc struct {
		Graphs []struct {
			Name     string `json:"name"`
			Vertices uint64 `json:"vertices"`
			Edges    uint64 `json:"edges"`
		} `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&graphsDoc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(graphsDoc.Graphs) != 1 || graphsDoc.Graphs[0].Name != "tiny" {
		t.Fatalf("unexpected graph listing: %+v", graphsDoc.Graphs)
	}
	if v := graphsDoc.Graphs[0].Vertices; v != 4+batches {
		t.Fatalf("recovered %d vertices, want %d", v, 4+batches)
	}
	if e := graphsDoc.Graphs[0].Edges; e != 4+batches {
		t.Fatalf("recovered %d edges, want %d", e, 4+batches)
	}

	// Exact match count: the seed holds 3 A–A edges (6 ordered
	// embeddings); every batch added one more A–A edge (2 embeddings).
	pattern := "t undirected\nv 0 A\nv 1 A\ne 0 1\n"
	mresp, err := http.Post(d2.base()+"/v1/graphs/tiny/match", "text/plain", strings.NewReader(pattern))
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("match status %d: %s", mresp.StatusCode, mbody)
	}
	want := 6 + 2*batches
	if got := uint64(strings.Count(string(mbody), "\n")) - 1; got != want {
		t.Fatalf("recovered graph matched %d embeddings, want %d", got, want)
	}

	// The rebuilt prefilter signature is exact for the recovered store.
	// No B–B edge ever existed, so the nbr-label filter rejects it; and
	// the storm grew vertex 0's degree to exactly batches+2, so a star
	// one past that boundary rejects while the boundary itself admits
	// and matches — off-by-one in the recovered histogram would flip one
	// of the two.
	postMatch := func(pattern string, limit int) (status int, body string) {
		t.Helper()
		r, err := http.Post(fmt.Sprintf("%s/v1/graphs/tiny/match?limit=%d", d2.base(), limit),
			"text/plain", strings.NewReader(pattern))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(r.Body)
		r.Body.Close()
		return r.StatusCode, string(raw)
	}
	star := func(leaves uint64) string {
		var sb strings.Builder
		sb.WriteString("t undirected\nv 0 A\n")
		for i := uint64(1); i <= leaves; i++ {
			fmt.Fprintf(&sb, "v %d A\n", i)
		}
		for i := uint64(1); i <= leaves; i++ {
			fmt.Fprintf(&sb, "e 0 %d\n", i)
		}
		return sb.String()
	}
	if status, body := postMatch("t undirected\nv 0 B\nv 1 B\ne 0 1\n", 10); status != http.StatusOK ||
		!strings.Contains(body, `"rejected_by":"nbr-label"`) {
		t.Fatalf("B-B pattern after recovery: status %d, body %s (want nbr-label reject)", status, body)
	}
	if status, body := postMatch(star(batches+3), 10); status != http.StatusOK ||
		!strings.Contains(body, `"rejected_by":"degree"`) {
		t.Fatalf("degree-%d star after recovery: status %d, body %s (want degree reject)", batches+3, status, body)
	}
	if status, body := postMatch(star(batches+2), 1); status != http.StatusOK ||
		strings.Contains(body, `"rejected_by"`) || !strings.Contains(body, `"embeddings":1`) {
		t.Fatalf("degree-%d star after recovery: status %d, body %s (want admitted with 1 embedding)", batches+2, status, body)
	}

	// The log keeps extending gapless: the next batch must be assigned
	// seq recSeq+1 on the recovered daemon.
	lastSeq, err := mutateBatch(d2.base(), []map[string]any{
		{"op": "add_vertex", "label": "A"},
		{"op": "insert_edge", "src": 4 + int(batches), "dst": 0, "label": ""},
	})
	if err != nil {
		t.Fatal(err)
	}
	if lastSeq != recSeq+2 {
		t.Fatalf("post-recovery batch ended at seq %d, want %d", lastSeq, recSeq+2)
	}
}

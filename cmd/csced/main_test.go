package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeTempGraph(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tiny.graph")
	data := "t undirected\n" +
		"v 0 A\nv 1 A\nv 2 A\nv 3 B\n" +
		"e 0 1\ne 1 2\ne 0 2\ne 2 3\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDaemonServesAndDrains(t *testing.T) {
	path := writeTempGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var out, errOut bytes.Buffer
	started := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-graph", "tiny=" + path}, &out, &errOut, started)
	}()

	var addr string
	select {
	case addr = <-started:
	case err := <-done:
		t.Fatalf("daemon exited early: %v\n%s", err, errOut.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not start")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	// Triangle of A-labeled vertices: 6 ordered embeddings in the data.
	pattern := "t undirected\nv 0 A\nv 1 A\nv 2 A\ne 0 1\ne 1 2\ne 0 2\n"
	mresp, err := http.Post(base+"/v1/graphs/tiny/match", "text/plain", strings.NewReader(pattern))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("match status %d: %s", mresp.StatusCode, body)
	}
	if got := strings.Count(string(body), "\n"); got != 7 { // 6 embeddings + summary
		t.Fatalf("expected 6 embeddings + summary, got %d lines:\n%s", got, body)
	}
	if !strings.Contains(string(body), `"done":true`) {
		t.Fatalf("missing summary line:\n%s", body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v\n%s", err, errOut.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain and exit")
	}
	if !strings.Contains(out.String(), "csced: bye") {
		t.Fatalf("missing shutdown log:\n%s", out.String())
	}
}

func TestDaemonErrors(t *testing.T) {
	ctx := context.Background()
	var out, errOut bytes.Buffer
	if err := run(ctx, nil, &out, &errOut, nil); err == nil {
		t.Fatal("no graphs must error")
	}
	if err := run(ctx, []string{"-graph", "bad"}, &out, &errOut, nil); err == nil {
		t.Fatal("malformed -graph must error")
	}
	if err := run(ctx, []string{"-graph", "g=/does/not/exist"}, &out, &errOut, nil); err == nil {
		t.Fatal("missing file must error")
	}
	if err := run(ctx, []string{"-dataset", "nope"}, &out, &errOut, nil); err == nil {
		t.Fatal("unknown dataset must error")
	}
}

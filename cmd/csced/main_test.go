package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func writeTempGraph(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tiny.graph")
	data := "t undirected\n" +
		"v 0 A\nv 1 A\nv 2 A\nv 3 B\n" +
		"e 0 1\ne 1 2\ne 0 2\ne 2 3\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDaemonServesAndDrains(t *testing.T) {
	path := writeTempGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var out, errOut bytes.Buffer
	started := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-graph", "tiny=" + path}, &out, &errOut, started)
	}()

	var addr string
	select {
	case addr = <-started:
	case err := <-done:
		t.Fatalf("daemon exited early: %v\n%s", err, errOut.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not start")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	// Triangle of A-labeled vertices: 6 ordered embeddings in the data.
	pattern := "t undirected\nv 0 A\nv 1 A\nv 2 A\ne 0 1\ne 1 2\ne 0 2\n"
	mresp, err := http.Post(base+"/v1/graphs/tiny/match", "text/plain", strings.NewReader(pattern))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("match status %d: %s", mresp.StatusCode, body)
	}
	if got := strings.Count(string(body), "\n"); got != 7 { // 6 embeddings + summary
		t.Fatalf("expected 6 embeddings + summary, got %d lines:\n%s", got, body)
	}
	if !strings.Contains(string(body), `"done":true`) {
		t.Fatalf("missing summary line:\n%s", body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v\n%s", err, errOut.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain and exit")
	}
	if !strings.Contains(out.String(), "csced: bye") {
		t.Fatalf("missing shutdown log:\n%s", out.String())
	}
}

func TestDaemonErrors(t *testing.T) {
	ctx := context.Background()
	var out, errOut bytes.Buffer
	if err := run(ctx, nil, &out, &errOut, nil); err == nil {
		t.Fatal("no graphs must error")
	}
	if err := run(ctx, []string{"-graph", "bad"}, &out, &errOut, nil); err == nil {
		t.Fatal("malformed -graph must error")
	}
	if err := run(ctx, []string{"-graph", "g=/does/not/exist"}, &out, &errOut, nil); err == nil {
		t.Fatal("missing file must error")
	}
	if err := run(ctx, []string{"-dataset", "nope"}, &out, &errOut, nil); err == nil {
		t.Fatal("unknown dataset must error")
	}
	if err := run(ctx, []string{"-graph", "bad", "-log-level", "loud"}, &out, &errOut, nil); err == nil {
		t.Fatal("bad -log-level must error")
	}
}

// TestDaemonObservabilityEndpoints boots the daemon with a tiny slow-query
// threshold, pprof enabled, and query logging on, then walks the whole
// observability surface: trace ID in the header and logs, latency
// quantiles in /metrics, the captured record in /debug/slowlog, and the
// pprof index on the private debug listener.
func TestDaemonObservabilityEndpoints(t *testing.T) {
	path := writeTempGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var out bytes.Buffer
	errOut := &lockedBuffer{} // slog writes from handler goroutines
	started := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-debug-addr", "127.0.0.1:0",
			"-graph", "tiny=" + path,
			"-slow-query", "1ns",
			"-log-level", "info",
		}, &out, errOut, started)
	}()

	var addr string
	select {
	case addr = <-started:
	case err := <-done:
		t.Fatalf("daemon exited early: %v\n%s", err, errOut.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not start")
	}
	base := "http://" + addr

	pattern := "t undirected\nv 0 A\nv 1 A\ne 0 1\n"
	mresp, err := http.Post(base+"/v1/graphs/tiny/match?profile=1", "text/plain", strings.NewReader(pattern))
	if err != nil {
		t.Fatal(err)
	}
	traceID := mresp.Header.Get("X-Trace-Id")
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if len(traceID) != 16 {
		t.Fatalf("X-Trace-Id %q should be 16 hex chars", traceID)
	}
	if !strings.Contains(string(body), `"trace_id":"`+traceID+`"`) {
		t.Fatalf("summary lacks trace ID %s:\n%s", traceID, body)
	}
	if !strings.Contains(string(body), `"profile":[`) {
		t.Fatalf("?profile=1 summary lacks per-level profile:\n%s", body)
	}

	var metrics map[string]any
	mr, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(mr.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	mr.Body.Close()
	if metrics["slow_queries"].(float64) != 1 {
		t.Fatalf("slow_queries = %v, want 1 (threshold 1ns)", metrics["slow_queries"])
	}
	latency := metrics["latency"].(map[string]any)
	if _, ok := latency["phases"].(map[string]any)["exec"]; !ok {
		t.Fatalf("metrics latency block missing exec phase: %v", latency)
	}

	sr, err := http.Get(base + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	slowBody, _ := io.ReadAll(sr.Body)
	sr.Body.Close()
	if !strings.Contains(string(slowBody), `"trace_id": "`+traceID+`"`) {
		t.Fatalf("/debug/slowlog lacks the query's trace ID %s:\n%s", traceID, slowBody)
	}

	if !strings.Contains(errOut.String(), "trace_id="+traceID) {
		t.Fatalf("structured log lacks trace_id=%s:\n%s", traceID, errOut.String())
	}

	// The pprof index lives on the private debug listener.
	debugAddr := debugAddrFrom(t, out.String())
	pr, err := http.Get("http://" + debugAddr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pprofBody, _ := io.ReadAll(pr.Body)
	pr.Body.Close()
	if pr.StatusCode != http.StatusOK || !strings.Contains(string(pprofBody), "goroutine") {
		t.Fatalf("pprof index wrong (status %d):\n%.400s", pr.StatusCode, pprofBody)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v\n%s", err, errOut.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain and exit")
	}
}

// TestDaemonDrainFlushesTraceExport proves the shutdown ordering contract:
// the HTTP listener drains first, then the exporter flushes everything
// queued — so the traces of the last served queries reach the collector
// before run() returns, even with a linger window far longer than the
// whole test (no lost tail spans on SIGTERM).
func TestDaemonDrainFlushesTraceExport(t *testing.T) {
	var colMu sync.Mutex
	var colBodies []string
	collector := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		colMu.Lock()
		colBodies = append(colBodies, string(body))
		colMu.Unlock()
		w.WriteHeader(http.StatusOK)
	}))
	defer collector.Close()

	path := writeTempGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var out bytes.Buffer
	errOut := &lockedBuffer{}
	started := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-graph", "tiny=" + path,
			"-trace-export", "otlp",
			"-trace-endpoint", collector.URL,
		}, &out, errOut, started)
	}()

	var addr string
	select {
	case addr = <-started:
	case err := <-done:
		t.Fatalf("daemon exited early: %v\n%s", err, errOut.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not start")
	}
	base := "http://" + addr

	// Serve a few queries and SIGTERM immediately: with the default 200ms
	// linger, these traces are still sitting in the exporter's batch when
	// the shutdown starts — only the drain can deliver them.
	pattern := "t undirected\nv 0 A\nv 1 A\ne 0 1\n"
	var traceIDs []string
	for i := 0; i < 3; i++ {
		mresp, err := http.Post(base+"/v1/graphs/tiny/match", "text/plain", strings.NewReader(pattern))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, mresp.Body)
		mresp.Body.Close()
		if tid := mresp.Header.Get("X-Trace-Id"); tid != "" {
			traceIDs = append(traceIDs, tid)
		}
	}
	if len(traceIDs) != 3 {
		t.Fatalf("collected %d trace IDs, want 3", len(traceIDs))
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v\n%s", err, errOut.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain and exit")
	}

	// Every served query's trace must already be at the collector — run()
	// has returned, so nothing can deliver them later.
	colMu.Lock()
	all := strings.Join(colBodies, "\n")
	colMu.Unlock()
	for _, tid := range traceIDs {
		if !strings.Contains(all, `"traceId":"0000000000000000`+tid+`"`) {
			t.Fatalf("tail trace %s not flushed before exit; collector saw:\n%.2000s", tid, all)
		}
	}
}

// lockedBuffer makes bytes.Buffer safe for the handler goroutines that
// write log lines while the test reads.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// debugAddrFrom extracts the pprof listener address from the startup log.
func debugAddrFrom(t *testing.T, logs string) string {
	t.Helper()
	for _, line := range strings.Split(logs, "\n") {
		if rest, ok := strings.CutPrefix(line, "csced: pprof on http://"); ok {
			return strings.TrimSuffix(rest, "/debug/pprof/")
		}
	}
	t.Fatalf("startup log lacks pprof address:\n%s", logs)
	return ""
}
